"""Unit tests for the derived-metrics layer (hand-built traces, so every
expected value is computable by hand)."""

import math

import pytest

from repro.obs.metrics import (category_overlap_matrix, compute_metrics,
                               critical_path_lower_bound, detect_bubbles,
                               intersect_intervals, interval_length,
                               lane_metrics, link_throughput,
                               merge_intervals, overlap_efficiency)
from repro.sim.trace import CAT, Trace


def make_trace(spans):
    t = Trace()
    for cat, label, start, end, lane, nbytes in spans:
        t.record(cat, label, start, end, lane=lane, nbytes=nbytes)
    return t


# ---------------------------------------------------------------------------
# Interval algebra
# ---------------------------------------------------------------------------

def test_merge_intervals_collapses_overlaps():
    assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]
    assert merge_intervals([(1, 2), (2, 3)]) == [(1, 3)]  # adjacent
    assert merge_intervals([]) == []


def test_intersect_intervals():
    a = [(0.0, 2.0), (4.0, 6.0)]
    b = [(1.0, 5.0)]
    assert intersect_intervals(a, b) == [(1.0, 2.0), (4.0, 5.0)]
    assert intersect_intervals(a, [(10.0, 11.0)]) == []
    assert interval_length(intersect_intervals(a, b)) == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Lane metrics
# ---------------------------------------------------------------------------

def test_lane_busy_idle_sums_to_makespan():
    t = make_trace([
        (CAT.HTOD, "a", 0.0, 1.0, "x", 8.0),
        (CAT.HTOD, "b", 2.0, 4.0, "x", 8.0),
        (CAT.GPUSORT, "k", 0.0, 4.0, "y", 0.0),
    ])
    lanes = lane_metrics(t)
    assert lanes["x"]["busy_s"] == pytest.approx(3.0)
    assert lanes["x"]["idle_s"] == pytest.approx(1.0)
    assert lanes["x"]["utilization"] == pytest.approx(0.75)
    assert lanes["y"]["utilization"] == pytest.approx(1.0)
    for m in lanes.values():
        assert m["busy_s"] + m["idle_s"] == pytest.approx(t.makespan())


def test_bubble_detection_interior_gaps_only():
    t = make_trace([
        (CAT.MCPY, "a", 1.0, 2.0, "x", 0.0),
        (CAT.MCPY, "b", 3.0, 4.0, "x", 0.0),
        (CAT.MCPY, "c", 4.0, 5.0, "x", 0.0),
        (CAT.GPUSORT, "pad", 0.0, 10.0, "y", 0.0),
    ])
    # Only the 2..3 gap counts: before-first and after-last are not bubbles.
    assert detect_bubbles(t, "x") == [(2.0, 3.0)]
    assert detect_bubbles(t, "x", min_gap=1.5) == []
    assert detect_bubbles(t, "y") == []
    lanes = lane_metrics(t)
    assert lanes["x"]["bubbles"] == 1
    assert lanes["x"]["largest_bubble_s"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Overlap matrix
# ---------------------------------------------------------------------------

def test_overlap_matrix_by_hand():
    t = make_trace([
        (CAT.HTOD, "h", 0.0, 2.0, "a", 16.0),
        (CAT.GPUSORT, "s", 1.0, 4.0, "b", 0.0),
        (CAT.DTOH, "d", 3.5, 5.0, "c", 8.0),
    ])
    m = category_overlap_matrix(t)
    assert m[CAT.HTOD][CAT.HTOD] == pytest.approx(2.0)
    assert m[CAT.HTOD][CAT.GPUSORT] == pytest.approx(1.0)   # [1, 2]
    assert m[CAT.GPUSORT][CAT.DTOH] == pytest.approx(0.5)   # [3.5, 4]
    assert m[CAT.HTOD][CAT.DTOH] == pytest.approx(0.0)
    # Symmetry.
    for a in m:
        for b in m:
            assert m[a][b] == pytest.approx(m[b][a])


def test_overlap_bounded_by_component_busy():
    t = make_trace([
        (CAT.HTOD, "h1", 0.0, 2.0, "a", 0.0),
        (CAT.HTOD, "h2", 1.0, 3.0, "b", 0.0),   # overlapping same-cat spans
        (CAT.GPUSORT, "s", 0.0, 10.0, "g", 0.0),
    ])
    m = category_overlap_matrix(t)
    assert m[CAT.HTOD][CAT.HTOD] == pytest.approx(3.0)  # union, not 4
    for a in m:
        for b in m:
            assert m[a][b] <= min(m[a][a], m[b][b]) + 1e-12


def test_diagonal_reproduces_related_work_accounting():
    """The related-work subset of the matrix equals the Fig. 7/8 numbers
    computed by Trace.busy_time (the SortResult.related_work_end_to_end
    path)."""
    t = make_trace([
        (CAT.HTOD, "h", 0.0, 2.0, "a", 0.0),
        (CAT.GPUSORT, "s1", 1.0, 4.0, "g", 0.0),
        (CAT.GPUSORT, "s2", 3.0, 6.0, "g", 0.0),
        (CAT.DTOH, "d", 5.0, 7.0, "c", 0.0),
        (CAT.MCPY, "m", 0.0, 7.0, "h", 0.0),
    ])
    m = category_overlap_matrix(t)
    for cat in CAT.RELATED_WORK:
        assert m[cat][cat] == pytest.approx(t.busy_time([cat]), abs=1e-9)


# ---------------------------------------------------------------------------
# Efficiency, links, full dict
# ---------------------------------------------------------------------------

def test_overlap_efficiency_perfect_and_serial():
    perfect = make_trace([
        (CAT.HTOD, "h", 0.0, 4.0, "a", 0.0),
        (CAT.GPUSORT, "s", 0.0, 4.0, "b", 0.0),
    ])
    assert overlap_efficiency(perfect) == pytest.approx(1.0)
    serial = make_trace([
        (CAT.HTOD, "h", 0.0, 2.0, "a", 0.0),
        (CAT.GPUSORT, "s", 2.0, 4.0, "b", 0.0),
    ])
    assert critical_path_lower_bound(serial) == pytest.approx(2.0)
    assert overlap_efficiency(serial) == pytest.approx(0.5)
    assert overlap_efficiency(Trace()) == 1.0


def test_link_throughput():
    t = make_trace([
        (CAT.HTOD, "h1", 0.0, 1.0, "a", 10e9),
        (CAT.HTOD, "h2", 0.5, 1.5, "b", 5e9),   # overlap collapses
        (CAT.GPUSORT, "s", 0.0, 2.0, "g", 0.0),
    ])
    links = link_throughput(t)
    assert links[CAT.HTOD]["bytes"] == pytest.approx(15e9)
    assert links[CAT.HTOD]["busy_s"] == pytest.approx(1.5)
    assert links[CAT.HTOD]["bytes_per_s"] == pytest.approx(10e9)
    assert CAT.DTOH not in links        # nothing moved
    assert CAT.GPUSORT not in links     # not a link category


def test_compute_metrics_components_match_trace_total():
    t = make_trace([
        (CAT.HTOD, "h", 0.0, 2.0, "a", 1.0),
        (CAT.HTOD, "h2", 1.0, 2.5, "a2", 1.0),
        (CAT.GPUSORT, "s", 1.0, 4.0, "g", 0.0),
        (CAT.SYNC, "y", 4.0, 4.1, "h", 0.0),
    ])
    m = compute_metrics(t)
    for cat, total in m["components"].items():
        assert math.isclose(total, t.total(cat), abs_tol=1e-9)
    assert m["related_work_end_to_end_s"] == pytest.approx(
        sum(t.busy_time([c]) for c in CAT.RELATED_WORK))
    assert m["elapsed_s"] == pytest.approx(t.makespan())
    assert 0.0 < m["overlap_efficiency"] <= 1.0
    assert m["stretch"] == pytest.approx(1.0 / m["overlap_efficiency"])


def test_compute_metrics_empty_trace():
    m = compute_metrics(Trace())
    assert m["makespan_s"] == 0.0
    assert m["components"] == {}
    assert m["overlap_efficiency"] == 1.0
    assert m["lanes"] == {}
