"""Trend observatory: changepoint detection, smoothing, ratchet and
trend-aware miss classification.

The acceptance criterion this file pins: a synthetic archive series
with an injected 1.4x step is flagged as exactly one changepoint at the
right index (the first point of the new regime).
"""

import pytest

from repro.errors import ArchiveError
from repro.obs import (append_entries, compare_entries,
                       detect_changepoints, entry_from_result, ewma,
                       load_archive, make_entry, metric_series,
                       trend_summary)
from repro.obs.trends import (TRENDS_SCHEMA, _anomalies, classify_miss,
                              mad, median, ratchet_proposal,
                              series_trend)

STEP = [1.00, 1.02, 0.99, 1.01, 1.00, 1.40, 1.41, 1.39, 1.40, 1.42]


def archive_of(tmp_path, makespans, n=1000):
    """A synthetic single-fingerprint archive, one entry per value."""
    path = tmp_path / "runs.jsonl"
    entries = [make_entry(source="run", label=f"r{i}",
                          point={"approach": "bline", "n": n},
                          metrics={"makespan_s": v, "seq": float(i)})
               for i, v in enumerate(makespans)]
    append_entries(path, entries)
    return path, entries


# ---------------------------------------------------------------------------
# Robust statistics
# ---------------------------------------------------------------------------


def test_median_and_mad():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
    assert mad([1.0, 1.0, 1.0]) == 0.0
    assert mad([1.0, 2.0, 3.0, 100.0]) == 1.0   # outlier-proof spread
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        mad([])


def test_ewma_smooths_toward_new_values():
    out = ewma([1.0, 1.0, 2.0], alpha=0.5)
    assert out == [1.0, 1.0, 1.5]
    assert len(ewma(STEP)) == len(STEP)
    assert ewma([], alpha=0.3) == []
    with pytest.raises(ValueError):
        ewma([1.0], alpha=0.0)


# ---------------------------------------------------------------------------
# Changepoints (acceptance criterion)
# ---------------------------------------------------------------------------


def test_injected_step_flags_exactly_one_changepoint():
    cps = detect_changepoints(STEP)
    assert len(cps) == 1
    cp = cps[0]
    assert cp["index"] == 5            # first point of the new regime
    assert cp["before"] == pytest.approx(1.00, abs=0.02)
    assert cp["after"] == pytest.approx(1.40, abs=0.02)
    assert cp["ratio"] == pytest.approx(1.4, rel=0.02)
    assert cp["score"] > 4.0


def test_quiet_series_has_no_changepoints():
    assert detect_changepoints([1.0, 1.01, 0.99, 1.0, 1.02, 0.98]) == []
    assert detect_changepoints([1.0] * 8) == []


def test_short_series_has_no_changepoints():
    for vals in ([], [1.0], [1.0, 2.0], [1.0, 1.0, 9.0]):
        assert detect_changepoints(vals) == []


def test_single_outlier_is_not_a_step():
    vals = [1.0, 1.01, 0.99, 5.0, 1.0, 1.02, 0.98, 1.0]
    assert detect_changepoints(vals) == []
    # ...but it is a regime-local anomaly
    assert _anomalies(vals, []) == [3]


def test_two_steps_found_recursively():
    vals = [1.0] * 5 + [2.0] * 5 + [4.0] * 5
    cps = detect_changepoints(vals)
    assert [c["index"] for c in cps] == [5, 10]
    assert [c["after"] for c in cps] == [2.0, 4.0]


def test_small_relative_step_is_ignored():
    # 2% step: statistically sharp but under the 5% relative floor.
    vals = [1.0] * 6 + [1.02] * 6
    assert detect_changepoints(vals) == []
    assert len(detect_changepoints(vals, min_rel=0.01)) == 1


# ---------------------------------------------------------------------------
# Ratchet + miss classification
# ---------------------------------------------------------------------------


def test_ratchet_proposed_when_regime_left_reference():
    cps = detect_changepoints(STEP)
    prop = ratchet_proposal(STEP, 1.0, cps)
    assert prop is not None
    assert prop["ratio"] == pytest.approx(1.4, rel=0.02)
    assert prop["regime_runs"] == 5
    assert "re-baseline" in prop["message"]


def test_ratchet_quiet_cases():
    assert ratchet_proposal([1.0, 1.0, 1.0, 1.0], 1.0) is None  # fresh
    assert ratchet_proposal([1.4, 1.4], 1.0) is None      # not sustained
    assert ratchet_proposal([1.4] * 5, 0.0) is None       # no reference
    assert ratchet_proposal([], 1.0) is None


def test_classify_miss_progression():
    one = classify_miss([False, False])
    assert (one["consecutive"], one["sustained"]) == (1, False)
    assert one["message"].startswith("one-off miss")

    two = classify_miss([False, True])
    assert (two["consecutive"], two["sustained"]) == (2, False)
    assert two["message"].startswith("not yet sustained")

    sustained = classify_miss([False, True, True])
    assert (sustained["consecutive"], sustained["sustained"]) == (3, True)
    assert sustained["message"].startswith("sustained regression")

    # only the *trailing* run matters: an old miss does not count
    assert classify_miss([True, False])["consecutive"] == 1
    assert classify_miss([])["consecutive"] == 1


# ---------------------------------------------------------------------------
# Archive-level series and documents
# ---------------------------------------------------------------------------


def test_metric_series_in_archive_order(tmp_path):
    path, entries = archive_of(tmp_path, [1.0, 2.0, 3.0])
    series = metric_series(load_archive(path), "makespan_s")
    assert list(series) == [entries[0]["fingerprint"]]
    ids, vals = zip(*series[entries[0]["fingerprint"]])
    assert vals == (1.0, 2.0, 3.0)
    assert ids == tuple(e["entry"] for e in entries)
    # absent metric -> no series at all
    assert metric_series(entries, "nope") == {}


def test_series_trend_shape():
    t = series_trend(STEP)
    assert t["n"] == len(STEP)
    assert len(t["ewma"]) == len(STEP)
    assert t["last"] == STEP[-1]
    assert len(t["changepoints"]) == 1
    # reference defaults to the pre-step regime -> ratchet proposed
    assert t["ratchet"] is not None
    empty = series_trend([])
    assert (empty["n"], empty["last"], empty["ratchet"]) == (0, None,
                                                            None)


def test_trend_summary_document(tmp_path):
    path, entries = archive_of(tmp_path, STEP)
    doc = trend_summary(load_archive(path))
    assert doc["schema"] == TRENDS_SCHEMA
    assert doc["n_fingerprints"] == 1
    fp = entries[0]["fingerprint"]
    blk = doc["fingerprints"][fp]
    assert blk["n_entries"] == len(STEP)
    assert blk["label"] == "r9"                      # latest label wins
    tr = blk["metrics"]["makespan_s"]
    assert [c["index"] for c in tr["changepoints"]] == [5]
    assert doc["n_changepoints"] >= 1
    assert doc["n_proposals"] >= 1
    # restricted metric list
    only = trend_summary(entries, metrics=["seq"])
    assert list(only["fingerprints"][fp]["metrics"]) == ["seq"]


def test_compare_entries_needs_reports(tmp_path):
    _, entries = archive_of(tmp_path, [1.0, 2.0])
    with pytest.raises(ArchiveError, match="no run report"):
        compare_entries(entries[0], entries[1])


def test_compare_entries_self_diff_is_clean():
    from repro.hetsort import HeterogeneousSorter
    from repro.hw.platforms import get_platform
    res = HeterogeneousSorter(get_platform("PLATFORM1"),
                              pinned_elements=50_000).sort(n=1_000_000)
    e = entry_from_result(res, label="x")
    d = compare_entries(e, e)
    assert d["zero"] is True
    assert d["makespan"]["delta"] == 0.0
    assert d["a"] == d["b"] == f"x@{e['entry']}"
