"""The cross-run performance archive: content addressing, append-only
idempotency, byte stability, and validation.

The acceptance criteria this file pins: the archive is byte-stable and
append-only (re-archiving the same deterministic run is a byte-level
no-op on both the JSONL and the manifest sidecar), and
:func:`validate_archive` rejects corruption, duplicates and manifest
drift with typed errors.
"""

import json

import pytest

from repro.errors import ArchiveError
from repro.hetsort import HeterogeneousSorter
from repro.hw.platforms import get_platform
from repro.obs import (append_entries, archive_summary, build_manifest,
                       canonical_json, entry_from_ledger,
                       entry_from_result, entry_id, fingerprint,
                       load_archive, make_entry, manifest_path,
                       validate_archive)


def small_result(n=1_000_000, approach="bline"):
    sorter = HeterogeneousSorter(get_platform("PLATFORM1"),
                                 approach=approach,
                                 pinned_elements=50_000)
    return sorter.sort(n=n)


def synthetic_entry(makespan=1.0, label="t", source="run", n=1000):
    return make_entry(source=source, label=label,
                      point={"approach": "bline", "n": n},
                      metrics={"makespan_s": makespan})


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------


def test_fingerprint_is_point_only():
    a = make_entry(source="run", label="one",
                   point={"n": 5, "approach": "bline"},
                   metrics={"makespan_s": 1.0})
    b = make_entry(source="gate:x", label="two",
                   point={"approach": "bline", "n": 5},
                   metrics={"makespan_s": 2.0})
    assert a["fingerprint"] == b["fingerprint"]       # key order ignored
    assert a["entry"] != b["entry"]                   # body differs


def test_entry_id_matches_recomputation():
    e = synthetic_entry()
    assert e["entry"] == entry_id(e)
    assert e["fingerprint"] == fingerprint(e["point"])


def test_metrics_must_be_finite_numbers():
    for bad in (float("nan"), float("inf"), "fast", True, None):
        with pytest.raises(ArchiveError):
            make_entry(source="run", label="x", point={"n": 1},
                       metrics={"m": bad})


def test_entry_from_result_carries_report_and_lanes():
    res = small_result()
    e = entry_from_result(res, label="bline_1m")
    assert e["schema"] == "repro.archive/v1"
    assert e["metrics"]["elapsed_s"] == res.elapsed
    assert e["metrics"]["throughput_el_per_s"] > 0
    assert e["metrics"]["makespan_s"] == e["report"]["makespan_s"]
    assert e["lanes"]                                  # utilization fractions
    assert all(0.0 <= u <= 1.0 + 1e-9 for u in e["lanes"].values())
    # the whole entry is strict JSON
    json.dumps(e, allow_nan=False)


def test_entry_from_result_is_deterministic():
    a = entry_from_result(small_result(), label="x")
    b = entry_from_result(small_result(), label="x")
    assert a == b
    assert canonical_json(a) == canonical_json(b)


def test_entry_from_ledger_roundtrip():
    from repro.obs import run_sweep
    from repro.obs.sweep import sweep_points
    records = run_sweep(sweep_points("ci")[:1], model_n=1_000_000)
    e = entry_from_ledger(records[0])
    assert e["label"] == records[0]["run_id"]
    assert e["metrics"]["makespan_s"] == \
        records[0]["measured"]["makespan_s"]
    assert e["point"] == records[0]["point"]


# ---------------------------------------------------------------------------
# Append-only idempotency / byte stability
# ---------------------------------------------------------------------------


def test_append_twice_is_byte_identical(tmp_path):
    path = tmp_path / "arch.jsonl"
    entries = [synthetic_entry(1.0), synthetic_entry(2.0, n=2000)]
    fresh = append_entries(path, entries)
    assert len(fresh) == 2
    first = path.read_bytes()
    first_manifest = (tmp_path / "arch.manifest.json").read_bytes()
    fresh = append_entries(path, entries)
    assert fresh == []
    assert path.read_bytes() == first
    assert (tmp_path / "arch.manifest.json").read_bytes() \
        == first_manifest


def test_append_only_ever_extends(tmp_path):
    path = tmp_path / "arch.jsonl"
    append_entries(path, [synthetic_entry(1.0)])
    before = path.read_bytes()
    append_entries(path, [synthetic_entry(1.0), synthetic_entry(3.0)])
    after = path.read_bytes()
    assert after.startswith(before)        # old bytes never rewritten
    assert len(load_archive(path)) == 2


def test_append_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "er" / "arch.jsonl"
    append_entries(path, [synthetic_entry()])
    assert path.exists()
    assert validate_archive(path)["n_entries"] == 1


def test_append_rejects_tampered_entry(tmp_path):
    e = synthetic_entry()
    e["metrics"]["makespan_s"] = 99.0      # body no longer matches hash
    with pytest.raises(ArchiveError, match="content hash"):
        append_entries(tmp_path / "a.jsonl", [e])


def test_manifest_path_sidecar():
    assert manifest_path("x/runs.jsonl") == "x/runs.manifest.json"
    assert manifest_path("runs") == "runs.manifest.json"


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def test_validate_ok_summary(tmp_path):
    path = tmp_path / "a.jsonl"
    append_entries(path, [synthetic_entry(1.0),
                          synthetic_entry(2.0, source="gate:x", n=2)])
    summary = validate_archive(path)
    assert summary["n_entries"] == 2
    assert summary["n_fingerprints"] == 2
    assert summary["sources"] == {"gate:x": 1, "run": 1}
    assert "makespan_s" in summary["metrics"]


def test_validate_rejects_corrupted_line(tmp_path):
    path = tmp_path / "a.jsonl"
    append_entries(path, [synthetic_entry()])
    text = path.read_text().replace("makespan_s", "makespan_x")
    path.write_text(text)
    with pytest.raises(ArchiveError):
        validate_archive(path)


def test_validate_rejects_duplicate_ids(tmp_path):
    path = tmp_path / "a.jsonl"
    e = synthetic_entry()
    line = canonical_json(e, indent=None) + "\n"
    path.write_text(line + line)
    (tmp_path / "a.manifest.json").write_text(
        canonical_json(build_manifest([e, e])))
    with pytest.raises(ArchiveError, match="duplicate"):
        validate_archive(path)


def test_validate_rejects_missing_manifest(tmp_path):
    path = tmp_path / "a.jsonl"
    append_entries(path, [synthetic_entry()])
    (tmp_path / "a.manifest.json").unlink()
    with pytest.raises(ArchiveError, match="manifest missing"):
        validate_archive(path)


def test_validate_rejects_stale_manifest(tmp_path):
    path = tmp_path / "a.jsonl"
    append_entries(path, [synthetic_entry(1.0)])
    # append a line behind the manifest's back
    with open(path, "a") as fh:
        fh.write(canonical_json(synthetic_entry(2.0, n=7),
                                indent=None) + "\n")
    with pytest.raises(ArchiveError, match="disagrees"):
        validate_archive(path)


def test_validate_rejects_unknown_schema(tmp_path):
    path = tmp_path / "a.jsonl"
    path.write_text('{"schema": "repro.other/v9"}\n')
    with pytest.raises(ArchiveError, match="unknown archive schema"):
        load_archive(path)


def test_archive_summary_pure():
    entries = [synthetic_entry(1.0), synthetic_entry(2.0, n=2)]
    s = archive_summary(entries)
    assert s["n_entries"] == 2
    assert sorted(s["fingerprints"].values()) == [1, 1]
