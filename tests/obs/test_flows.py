"""Interconnect flow observatory unit tests: the grant ledger's
accounting and bus mirroring, the bit-for-bit rate-integral and
contention-attribution invariants, span reconciliation against the
causal trace, and byte-stability of the ``repro.flows/v1`` document."""

import pytest

from repro.errors import FlowLedgerError
from repro.hetsort import HeterogeneousSorter
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.obs import (EV, EventBus, FlowLedger, Sink,
                       attribute_contention, canonical_json,
                       concurrency_series, flow_rate_counters,
                       link_peaks, link_timelines, link_utilization,
                       reconcile_flow_spans, settled_split,
                       verify_contention, verify_rate_integral)
from repro.sim.bandwidth import FlowNetwork
from repro.sim.engine import Environment


class _Collect(Sink):
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def _net_with_ledger(caps):
    env = Environment()
    net = FlowNetwork(env)
    links = {name: net.add_link(name, cap) for name, cap in caps.items()}
    net.ledger = FlowLedger(clock=lambda: env.now, capacities=caps)
    return env, net, links


# ---------------------------------------------------------------------------
# The ledger on a raw network
# ---------------------------------------------------------------------------

def test_ledger_records_lifecycle_and_rates():
    env, net, links = _net_with_ledger({"l": 10.0})

    def p():
        yield net.transfer(50.0, [links["l"]], label="x")

    env.process(p())
    env.run()
    led = net.ledger
    assert led.n_flows == 1
    rec = led.flows[0]
    assert rec["label"] == "x"
    assert rec["nbytes"] == 50.0
    assert rec["links"] == [["l", 1.0]]
    assert rec["iso_rate"] == 10.0
    assert rec["start"] == 0.0 and rec["end"] == 5.0
    assert rec["moved"] == 50.0
    assert rec["rates"][0] == [0.0, 10.0, 0.0]
    assert led.bytes_moved == 50.0


def test_two_flows_share_and_integral_holds_bitwise():
    env, net, links = _net_with_ledger({"l": 10.0})

    def p(nbytes, delay):
        yield env.timeout(delay)
        yield net.transfer(nbytes, [links["l"]])

    env.process(p(50.0, 0.0))
    env.process(p(30.0, 1.0))
    env.run()
    doc = net.ledger.to_dict()
    ri = verify_rate_integral(doc)
    assert ri["ok"], ri["failures"]
    assert ri["checked"] == 2
    # while both flows are active each is granted half the link
    assert [5.0, doc["flows"][0]["rates"][1][1]] == [5.0, 5.0]
    # the aggregate granted rate never exceeds capacity
    for name, pts in link_timelines(doc).items():
        assert max(load for _, load in pts) <= 10.0 * (1 + 1e-12)
    util = link_utilization(doc)["l"]
    assert max(u for _, u in util) == pytest.approx(1.0)
    assert link_peaks(doc)["l"]["capacity_bytes_per_s"] == 10.0


def test_zero_byte_flow_is_recorded_instantly():
    env, net, links = _net_with_ledger({"l": 10.0})

    def p():
        yield net.transfer(0.0, [links["l"]], label="z")

    env.process(p())
    env.run()
    rec = net.ledger.flows[0]
    assert rec["start"] == rec["end"] == 0.0
    assert rec["rates"] == []
    assert verify_rate_integral(net.ledger.to_dict())["ok"]


def test_capacity_change_is_ledgered():
    env, net, links = _net_with_ledger({"l": 10.0})

    def p():
        yield net.transfer(50.0, [links["l"]])

    def chaos():
        yield env.timeout(1.0)
        net.set_capacity(links["l"], 5.0)

    env.process(p())
    env.process(chaos())
    env.run()
    doc = net.ledger.to_dict()
    assert doc["capacity_events"] == [[1.0, "l", 5.0]]
    # utilization tracks the capacity in effect, so it stays at 1.0
    util = link_utilization(doc)["l"]
    assert all(u == pytest.approx(1.0) for _, u in util[:-1])
    assert verify_rate_integral(doc)["ok"]


def test_ledger_mirrors_bus_events():
    sink = _Collect()
    env, net, links = _net_with_ledger({"l": 10.0})
    bus = EventBus(clock=lambda: env.now)
    bus.attach(sink)
    net.ledger.bus = bus

    def p(nbytes, delay):
        yield env.timeout(delay)
        yield net.transfer(nbytes, [links["l"]])

    env.process(p(50.0, 0.0))
    env.process(p(30.0, 1.0))
    env.run()
    kinds = [e.kind for e in sink.events]
    assert kinds[0] == EV.FLOW_START
    assert kinds.count(EV.FLOW_START) == 2
    assert kinds.count(EV.FLOW_END) == 2
    # flow 0 is re-granted at the join and at the departure
    rate_events = [e for e in sink.events if e.kind == EV.FLOW_RATE]
    assert {e.data["id"] for e in rate_events} >= {0}
    ends = [e for e in sink.events if e.kind == EV.FLOW_END]
    assert ends[0].data["moved"] == pytest.approx(30.0)


def test_bind_span_rejects_unrecorded_flow():
    led = FlowLedger()

    class Ghost:
        fid = -1
        label = "ghost"

    with pytest.raises(FlowLedgerError, match="unrecorded"):
        led.bind_span(Ghost(), 3)


def test_concurrency_series_returns_to_zero():
    env, net, links = _net_with_ledger({"l": 10.0})

    def p(delay):
        yield env.timeout(delay)
        yield net.transfer(20.0, [links["l"]])

    for d in (0.0, 0.5, 1.0):
        env.process(p(d))
    env.run()
    series = concurrency_series(net.ledger.to_dict())
    assert max(c for _, c in series) == 3
    assert series[-1][1] == 0


# ---------------------------------------------------------------------------
# settled_split
# ---------------------------------------------------------------------------

def test_settled_split_exact_in_sorted_order():
    total = 0.123456789
    parts = settled_split(total, {"isolation": 0.7, "flow:1": 0.2,
                                  "flow:10": 0.1})
    s = 0.0
    for k in sorted(parts):
        s += parts[k]
    assert s == total


def test_settled_split_degenerate_weights():
    assert settled_split(1.5, {}) == {"unattributed": 1.5}
    assert settled_split(1.5, {"a": 0.0}) == {"unattributed": 1.5}
    assert settled_split(1.5, {"a": 2.0}) == {"a": 1.5}


# ---------------------------------------------------------------------------
# Contention attribution
# ---------------------------------------------------------------------------

def test_contention_charges_the_sharing_flow():
    env, net, links = _net_with_ledger({"l": 10.0})

    def p(nbytes, delay, label):
        yield env.timeout(delay)
        yield net.transfer(nbytes, [links["l"]], label=label)

    env.process(p(50.0, 0.0, "victim"))
    env.process(p(30.0, 1.0, "culprit"))
    env.run()
    doc = net.ledger.to_dict()
    contention = attribute_contention(doc)
    assert verify_contention(contention)["ok"]
    victim = contention["flows"][0]
    # 50 B alone at 10 B/s = 5 s isolation; sharing stretched it
    assert victim["duration_s"] > 5.0
    assert victim["isolation_s"] == pytest.approx(5.0)
    assert victim["slowdown_s"] == pytest.approx(
        victim["duration_s"] - 5.0)
    assert "flow:1" in victim["parts"]
    assert contention["total_contention_s"] > 0.0


def test_uncontended_flow_has_zero_slowdown():
    env, net, links = _net_with_ledger({"l": 10.0})

    def p():
        yield net.transfer(50.0, [links["l"]])

    env.process(p())
    env.run()
    contention = attribute_contention(net.ledger.to_dict())
    f = contention["flows"][0]
    assert f["slowdown_s"] == 0.0
    assert f["parts"] == {"isolation": f["duration_s"]}
    assert contention["total_contention_s"] == 0.0


# ---------------------------------------------------------------------------
# End-to-end: the sorter attaches the ledger
# ---------------------------------------------------------------------------

def _sort(platform=PLATFORM1, n=1_000_000, **kw):
    kw.setdefault("batch_size", 250_000)
    sorter = HeterogeneousSorter(platform, pinned_elements=50_000, **kw)
    return sorter.sort(n=n, approach="pipedata")


def test_sort_result_carries_flow_ledger_and_metrics():
    res = _sort()
    doc = res.flow_ledger.to_dict()
    assert doc["schema"] == "repro.flows/v1"
    assert doc["n_flows"] == len(doc["flows"]) > 0
    assert set(doc["capacities"]) == {"host_bus", "pcie.htod",
                                      "pcie.dtoh"}
    flows = res.metrics["flows"]
    assert flows["n_flows"] == doc["n_flows"]
    assert flows["bytes_moved"] > 0
    assert 0.0 < flows["link_peak_utilization"] <= 1.0
    assert res.flows == flows
    engine = res.metrics["engine"]
    assert engine["processed_events"] > 0
    assert engine["events_per_sim_s"] > 0


def test_sort_ledger_invariants_and_reconciliation():
    res = _sort(platform=PLATFORM2, n=2_000_000, n_gpus=2)
    doc = res.flow_ledger.to_dict()
    ri = verify_rate_integral(doc)
    assert ri["ok"], ri["failures"]
    contention = attribute_contention(doc)
    assert verify_contention(contention)["ok"]
    rec = reconcile_flow_spans(doc, res.trace)
    assert rec["ok"], rec["failures"]
    # every transfer flow was bound to its causal-trace span
    assert rec["unbound"] == 0
    assert rec["checked"] == doc["n_flows"]
    # the 2-GPU grid actually contends on the shared host bus
    assert contention["total_contention_s"] > 0.0


def test_sort_ledger_is_byte_stable():
    a = canonical_json(_sort().flow_ledger.to_dict())
    b = canonical_json(_sort().flow_ledger.to_dict())
    assert a == b


def test_flow_rate_counter_tracks():
    res = _sort()
    counters = flow_rate_counters(res.flow_ledger.to_dict())
    assert set(counters) == {"link.host_bus.bw_bytes_per_s",
                             "link.pcie.htod.bw_bytes_per_s",
                             "link.pcie.dtoh.bw_bytes_per_s"}
    series = counters["link.host_bus.bw_bytes_per_s"]
    assert series.unit == "bytes/s"
    assert len(series) == len(list(series.samples())) > 0


def test_ledger_is_timeline_neutral():
    """Attaching the ledger never perturbs the simulation: the same
    network scenario completes at bit-identical times with and without
    it (the ledger only reads state and never schedules events)."""
    def run(with_ledger):
        env = Environment()
        net = FlowNetwork(env)
        link = net.add_link("l", 10.0)
        if with_ledger:
            net.ledger = FlowLedger(clock=lambda: env.now,
                                    capacities={"l": 10.0})
        ends = []

        def p(nbytes, delay):
            yield env.timeout(delay)
            yield net.transfer(nbytes, [link])
            ends.append(env.now)

        for spec in ((50.0, 0.0), (30.0, 1.0), (20.0, 1.0)):
            env.process(p(*spec))
        env.run()
        return ends

    assert run(True) == run(False)


def test_reconcile_flags_a_doctored_ledger():
    res = _sort()
    doc = res.flow_ledger.to_dict()
    bound = next(f for f in doc["flows"] if f["span"] is not None)
    bound["end"] += 1.0
    rec = reconcile_flow_spans(doc, res.trace)
    assert not rec["ok"]
    assert any("ends at" in msg for msg in rec["failures"])
