"""Tests for the streaming telemetry bus and its shipped sinks.

The two load-bearing guarantees:

* **sink neutrality** -- attaching every shipped sink produces a
  byte-identical canonical run report (zero structural diff through
  ``check_regression``) vs. a sink-free run;
* **exact replay** -- the JSONL event log reconstructs span ids, deps
  and counter samples exactly, and a same-seed run writes byte-identical
  log files.
"""

import io
import json

import pytest

from repro.errors import EventLogError
from repro.hetsort import APPROACH_RUNNERS, HeterogeneousSorter
from repro.hw.platforms import PLATFORM1
from repro.obs import (EV, EventBus, JsonlSink, LiveAggregator, Sink,
                       TelemetryEvent, TtySink, WatchdogSink, canonical_json,
                       check_regression, read_events, replay_events,
                       run_report, validate_event_log, validate_events)


def run_once(approach, sinks=()):
    kw = {} if approach == "bline" else {"batch_size": 250_000}
    sorter = HeterogeneousSorter(PLATFORM1, pinned_elements=50_000, **kw)
    return sorter.sort(n=1_000_000, approach=approach, sinks=sinks)


def all_sinks(buf=None, tty=None):
    return [WatchdogSink(stall_steps=50, queue_wait_steps=50,
                         deadline_s=0.001),
            JsonlSink(buf if buf is not None else io.StringIO()),
            LiveAggregator(),
            TtySink(out=tty if tty is not None else io.StringIO())]


def events_from(buf: io.StringIO, tmp_path, name="run.events.jsonl"):
    path = tmp_path / name
    path.write_text(buf.getvalue())
    return path


# ---------------------------------------------------------------------------
# The bus itself
# ---------------------------------------------------------------------------

class _Collect(Sink):
    def __init__(self):
        self.events = []
        self.steps = 0

    def emit(self, event):
        self.events.append(event)

    def on_step(self, bus):
        self.steps += 1


def test_bus_stamps_clock_and_sequence():
    t = {"now": 0.0}
    bus = EventBus(clock=lambda: t["now"])
    sink = bus.attach(_Collect())
    bus.phase("a")
    t["now"] = 1.5
    bus.counter("x", 2.0, unit="el")
    assert [(e.kind, e.t, e.seq) for e in sink.events] == \
        [(EV.PHASE, 0.0, 0), (EV.COUNTER, 1.5, 1)]
    bus.detach(sink)
    bus.phase("b")
    assert len(sink.events) == 2          # detached sinks stop receiving
    assert bus.emit(EV.PHASE, name="c").seq == 3   # seq keeps advancing


def test_event_round_trips_through_dict():
    ev = TelemetryEvent(kind=EV.QUEUE, t=0.25, seq=7,
                        data={"name": "q", "depth": 3})
    assert TelemetryEvent.from_dict(json.loads(
        canonical_json(ev.to_dict(), indent=None))) == ev


# ---------------------------------------------------------------------------
# Sink neutrality (the tentpole invariant)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("approach", sorted(APPROACH_RUNNERS))
def test_sinks_never_perturb_the_run(approach):
    bare = run_once(approach)
    observed = run_once(approach, sinks=all_sinks())

    assert observed.elapsed == bare.elapsed
    assert observed.metrics == bare.metrics

    ra = canonical_json(run_report(bare, label=approach))
    rb = canonical_json(run_report(observed, label=approach))
    assert ra == rb                       # byte-identical canonical report

    verdict = check_regression(json.loads(rb), json.loads(ra))
    assert verdict["ok"] and not verdict["failures"]


def test_functional_output_identical_with_sinks():
    import numpy as np
    rng = np.random.default_rng(3)
    data = rng.uniform(size=60_000)
    kw = dict(batch_size=20_000, pinned_elements=5_000)
    a = HeterogeneousSorter(PLATFORM1, **kw).sort(
        data.copy(), approach="pipemerge")
    b = HeterogeneousSorter(PLATFORM1, **kw).sort(
        data.copy(), approach="pipemerge", sinks=all_sinks())
    assert np.array_equal(a.output, b.output)
    assert a.elapsed == b.elapsed


# ---------------------------------------------------------------------------
# JSONL log: round-trip and byte-stability
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("approach", ["bline", "pipedata", "pipemerge"])
def test_jsonl_replay_is_exact(approach, tmp_path):
    buf = io.StringIO()
    res = run_once(approach, sinks=[JsonlSink(buf)])
    header, events = read_events(events_from(buf, tmp_path))
    assert header == {"schema": "repro.events/v1"}

    summary = validate_events(events)
    assert summary["counts"]["span"] == len(res.trace.spans)
    assert summary["counts"]["run.start"] == 1
    assert summary["counts"]["run.end"] == 1
    assert summary["counts"]["phase"] > 0

    trace, recorder = replay_events(events)
    assert len(trace.spans) == len(res.trace.spans)
    for got, want in zip(trace.spans, res.trace.spans):
        assert got == want                # ids, deps, meta, bytes -- all

    # Counter series reconstruct sample for sample.
    assert sorted(recorder.series) == sorted(res.recorder.series)
    for name, series in recorder.series.items():
        original = res.recorder.series[name]
        assert list(series.samples()) == list(original.samples())
        assert series.unit == original.unit


def test_jsonl_log_is_byte_stable(tmp_path):
    """Acceptance gate: two same-seed tiny-grid sweeps write identical
    event-log bytes (and identical ledger records)."""
    from repro.obs.sweep import run_point, sweep_points

    for pt in sweep_points("tiny"):
        logs = []
        for _ in range(2):
            buf = io.StringIO()
            run_point(pt, sinks=[JsonlSink(buf), LiveAggregator(),
                                 WatchdogSink()])
            logs.append(buf.getvalue())
        assert logs[0] == logs[1]
        assert logs[0].splitlines()[0] == '{"schema":"repro.events/v1"}'


def test_run_lifecycle_events(tmp_path):
    buf = io.StringIO()
    res = run_once("pipedata", sinks=[JsonlSink(buf)])
    _, events = read_events(events_from(buf, tmp_path))
    start, end = events[0], events[-1]
    assert start.kind == EV.RUN_START
    assert start.data["approach"] == "pipedata"
    assert start.data["n"] == 1_000_000
    assert start.data["n_batches"] == 4
    assert end.kind == EV.RUN_END
    assert end.data["elapsed_s"] == res.elapsed
    assert end.data["n_spans"] == len(res.trace.spans)
    phases = {e.data["name"] for e in events if e.kind == EV.PHASE}
    assert {"worker.start", "batch.staged", "chunk.htod", "run.sorted",
            "merge.started", "merge.done", "worker.done"} <= phases


# ---------------------------------------------------------------------------
# Validation error paths
# ---------------------------------------------------------------------------

def _ev(kind, t, seq, **data):
    return TelemetryEvent(kind=kind, t=t, seq=seq, data=data)


def test_validate_rejects_bad_streams():
    with pytest.raises(EventLogError, match="unknown kind"):
        validate_events([_ev("nope", 0.0, 0)])
    with pytest.raises(EventLogError, match="gapless"):
        validate_events([_ev(EV.PHASE, 0.0, 0, name="a"),
                         _ev(EV.PHASE, 0.0, 2, name="b")])
    with pytest.raises(EventLogError, match="precedes"):
        validate_events([_ev(EV.PHASE, 1.0, 0, name="a"),
                         _ev(EV.PHASE, 0.5, 1, name="b")])
    with pytest.raises(EventLogError, match="not first"):
        validate_events([_ev(EV.PHASE, 0.0, 0, name="a"),
                         _ev(EV.RUN_START, 0.0, 1)])
    with pytest.raises(EventLogError, match="not last"):
        validate_events([_ev(EV.RUN_END, 0.0, 0),
                         _ev(EV.PHASE, 0.0, 1, name="a")])
    with pytest.raises(EventLogError, match="missing"):
        validate_events([_ev(EV.SPAN, 0.0, 0, id=0)])
    with pytest.raises(EventLogError, match="recording order"):
        validate_events([_ev(EV.SPAN, 0.0, 0, id=3, category="HtoD",
                             label="x", start=0.0, end=0.1, lane="",
                             nbytes=0.0, elements=0, meta=[], deps=[])])


def test_read_events_rejects_foreign_files(tmp_path):
    path = tmp_path / "bad.events.jsonl"
    path.write_text('{"schema":"something/else"}\n')
    with pytest.raises(EventLogError, match="unknown event-log schema"):
        read_events(path)
    path.write_text("")
    with pytest.raises(EventLogError, match="empty"):
        read_events(path)
    path.write_text('{"schema":"repro.events/v1"}\nnot json\n')
    with pytest.raises(EventLogError, match="not valid JSON"):
        read_events(path)


def test_validate_event_log_on_real_run(tmp_path):
    buf = io.StringIO()
    run_once("bline", sinks=[JsonlSink(buf)])
    summary = validate_event_log(events_from(buf, tmp_path))
    assert summary["schema"] == "repro.events/v1"
    assert summary["n_events"] == sum(summary["counts"].values())


# ---------------------------------------------------------------------------
# Aggregation, rendering, watchdog
# ---------------------------------------------------------------------------

def test_live_aggregator_snapshot():
    agg = LiveAggregator(model_slope=2.0e-8)
    res = run_once("pipedata", sinks=[agg])
    snap = agg.snapshot()
    assert snap["ended"] and snap["elapsed_s"] == res.elapsed
    assert snap["progress"] == {"batches_completed": 4, "n_batches": 4,
                                "fraction": 1.0, "merge_started": True}
    assert snap["eta_s"] == 0.0
    assert "gpu0" in snap["lanes"]
    assert 0.0 < snap["lanes"]["gpu0"]["utilization"] <= 1.0
    assert snap["categories"]["HtoD"]["fraction"] == 1.0
    assert snap["categories"]["GPUSort"]["fraction"] == 1.0


def test_live_aggregator_model_eta_before_progress():
    agg = LiveAggregator(model_slope=2.0e-8)
    agg.emit(_ev(EV.RUN_START, 0.0, 0, n=1_000_000, n_batches=100))
    # < 10% progress: the lower-bound model supplies the ETA.
    assert agg.eta_s() == pytest.approx(2.0e-8 * 1_000_000)


def test_tty_sink_degrades_to_plain_lines():
    out = io.StringIO()                   # not a TTY
    run_once("pipedata",
             sinks=[TtySink(out=out, plain_interval_s=0.01)])
    text = out.getvalue()
    lines = [ln for ln in text.splitlines() if ln.startswith("live ")]
    assert len(lines) >= 2                # periodic progress lines
    assert "batches=" in lines[0]
    assert "pipedata on PLATFORM1" in text   # the final frame


def test_watchdog_deadline_and_stall(tmp_path):
    buf = io.StringIO()
    run_once("pipedata",
             sinks=[WatchdogSink(stall_steps=10, deadline_s=1e-4),
                    JsonlSink(buf)])
    _, events = read_events(events_from(buf, tmp_path))
    warnings = [e for e in events if e.kind == EV.WARNING]
    codes = {w.data["code"] for w in warnings}
    assert "deadline" in codes
    deadline = next(w for w in warnings if w.data["code"] == "deadline")
    assert deadline.t > 1e-4
    # Warnings are part of the validated stream.
    validate_events(events)


def test_watchdog_flags_pinned_queue():
    bus = EventBus()
    sink = _Collect()
    wd = WatchdogSink(queue_wait_steps=3)
    bus.attach(wd)
    bus.attach(sink)
    bus.queue("gpu0.kernel", depth=2, in_use=1, capacity=1)
    for _ in range(5):
        bus._on_step(None)
    pinned = [e for e in sink.events if e.kind == EV.WARNING]
    assert len(pinned) == 1               # one warning per episode
    assert pinned[0].data["code"] == "queue.pinned"
    assert pinned[0].data["queue"] == "gpu0.kernel"
    # Queue drains -> the watchdog re-arms.
    bus.queue("gpu0.kernel", depth=0, in_use=0, capacity=1)
    for _ in range(5):
        bus._on_step(None)
    assert len([e for e in sink.events if e.kind == EV.WARNING]) == 1


def test_quiet_watchdog_on_healthy_run(tmp_path):
    """Default thresholds never fire on a healthy tiny run."""
    buf = io.StringIO()
    run_once("pipemerge", sinks=[WatchdogSink(), JsonlSink(buf)])
    _, events = read_events(events_from(buf, tmp_path))
    assert not [e for e in events if e.kind == EV.WARNING]
