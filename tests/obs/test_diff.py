"""Tests for trace diffing and the regression-gate verdict logic."""

import importlib.util
import json
import pathlib

import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw.platforms import PLATFORM1
from repro.obs.diff import (check_regression, diff_reports, load_report,
                            render_diff, report_from_trace, run_report,
                            write_report)
from repro.sim.trace import CAT, Trace


def small_run():
    sorter = HeterogeneousSorter(PLATFORM1, approach="pipemerge",
                                 batch_size=250_000,
                                 pinned_elements=50_000)
    return sorter.sort(n=1_000_000)


def scaled_trace(trace, factor, category=None):
    """Re-record a trace with (selected) durations scaled."""
    out = Trace()
    shift = {}
    new_end = {}
    for s in trace.spans:
        if s.deps:
            sh = max(new_end[d] for d in s.deps) \
                - max(trace.spans[d].end for d in s.deps)
        else:
            sh = 0.0
        start = s.start + sh
        k = factor if category in (None, s.category) else 1.0
        end = start + k * s.duration
        out.record(s.category, s.label, start, end, lane=s.lane,
                   nbytes=s.nbytes, elements=s.elements, meta=s.meta,
                   deps=s.deps)
        new_end[s.id] = end
    return out


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def test_run_report_shape():
    rep = run_report(small_run(), label="x")
    assert rep["schema"] == "repro.report/v1"
    assert rep["label"] == "x"
    assert rep["context"]["approach"] == "pipemerge"
    assert rep["makespan_s"] > 0
    assert rep["n_spans"] == sum(rep["span_index"].values())
    assert set(rep["categories"]) >= {CAT.GPUSORT, CAT.MCPY}
    assert rep["critical_path"]["duration"] == rep["makespan_s"]


def test_report_round_trip(tmp_path):
    rep = run_report(small_run())
    path = tmp_path / "report.json"
    write_report(rep, path)
    assert load_report(path) == rep
    # Canonical bytes: rewriting the same report is a no-op.
    first = path.read_bytes()
    write_report(load_report(path), path)
    assert path.read_bytes() == first


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


def test_self_diff_is_zero():
    rep = run_report(small_run())
    d = diff_reports(rep, rep)
    assert d["zero"]
    assert not d["regression"]
    assert not d["structural_change"]
    assert d["makespan"]["delta"] == 0.0
    assert "identical" in render_diff(d)


def test_timing_regression_detected():
    res = small_run()
    a = run_report(res, label="before")
    slower = scaled_trace(res.trace, 1.5, category=CAT.GPUSORT)
    b = report_from_trace(slower, label="after")
    d = diff_reports(a, b, tolerance=0.02)
    assert not d["zero"]
    assert d["regression"]
    assert not d["structural_change"]          # same span shapes
    assert d["makespan"]["delta"] > 0
    assert d["categories"][CAT.GPUSORT]["delta"] > 0
    assert d["categories"][CAT.MCPY]["delta"] == 0.0
    text = render_diff(d)
    assert "REGRESSION" in text and CAT.GPUSORT in text


def test_improvement_is_not_regression():
    res = small_run()
    a = run_report(res)
    faster = scaled_trace(res.trace, 0.5, category=CAT.GPUSORT)
    d = diff_reports(a, report_from_trace(faster), tolerance=0.0)
    assert d["makespan"]["delta"] < 0
    assert not d["regression"]


def test_tolerance_absorbs_small_growth():
    res = small_run()
    a = run_report(res)
    slightly = scaled_trace(res.trace, 1.001)
    b = report_from_trace(slightly)
    assert diff_reports(a, b, tolerance=0.05)["regression"] is False
    assert diff_reports(a, b, tolerance=1e-6)["regression"] is True


def test_structural_change_detected():
    res = small_run()
    a = run_report(res)
    t = scaled_trace(res.trace, 1.0)
    t0, t1 = t.window()
    t.record(CAT.SYNC, "extra", t1, t1 + 0.001, lane="host")
    d = diff_reports(a, report_from_trace(t))
    assert d["structural_change"]
    assert f"{CAT.SYNC}|extra|host" in d["spans"]["added"]
    assert not d["zero"]
    assert "added" in render_diff(d)


def test_recount_detected():
    a = {"schema": "repro.report/v1", "label": "a", "makespan_s": 1.0,
         "elapsed_s": 1.0, "categories": {}, "lanes": {},
         "critical_path": {"by_category": {}},
         "span_index": {"HtoD|x|l": 2}}
    b = dict(a, label="b", span_index={"HtoD|x|l": 3})
    d = diff_reports(a, b)
    assert d["spans"]["recounted"] == {"HtoD|x|l": {"a": 2, "b": 3}}
    assert d["structural_change"]


# ---------------------------------------------------------------------------
# Gate verdicts
# ---------------------------------------------------------------------------


def test_check_regression_ok_on_identical():
    rep = run_report(small_run())
    verdict = check_regression(rep, rep)
    assert verdict["ok"] and not verdict["failures"]


def test_check_regression_fails_on_slowdown():
    res = small_run()
    base = run_report(res)
    cur = report_from_trace(scaled_trace(res.trace, 1.2))
    verdict = check_regression(cur, base, tolerance=0.02)
    assert not verdict["ok"]
    assert any("regressed" in f for f in verdict["failures"])


def test_check_regression_fails_on_structure():
    res = small_run()
    base = run_report(res)
    t = scaled_trace(res.trace, 1.0)
    _, t1 = t.window()
    t.record(CAT.SYNC, "extra", t1, t1, lane="host")
    verdict = check_regression(report_from_trace(t), base)
    assert not verdict["ok"]
    assert any("structure" in f for f in verdict["failures"])


# ---------------------------------------------------------------------------
# The gate script itself
# ---------------------------------------------------------------------------


def _load_gate_module():
    path = (pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "regression_gate.py")
    spec = importlib.util.spec_from_file_location("regression_gate", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_gate_baseline_matches_committed(tmp_path):
    """The committed baseline must reproduce exactly on this code."""
    gate = _load_gate_module()
    with open(gate.BASELINE) as fh:
        baseline = json.load(fh)
    assert baseline["schema"] == gate.BASELINE_SCHEMA
    failures = gate.check(baseline)
    assert failures == []


def test_gate_detects_injected_regression():
    gate = _load_gate_module()
    with open(gate.BASELINE) as fh:
        baseline = json.load(fh)
    for rep in baseline["scenarios"].values():
        rep["makespan_s"] *= 0.5               # pretend we used to be 2x faster
    failures = gate.check(baseline)
    assert failures
    assert all("regressed" in f or "structure" in f for f in failures)
