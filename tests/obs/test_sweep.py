"""Sweep harness and ledger tests: grids, schemas, byte-stability."""

import json

import pytest

from repro.errors import LedgerError
from repro.obs.sweep import (GRIDS, LEDGER_SCHEMA, ledger_record,
                             load_ledger, run_point, run_sweep,
                             sweep_points, write_ledger)


@pytest.fixture(scope="module")
def tiny_records():
    return run_sweep(sweep_points("tiny"), model_n=4_000_000)


def test_unknown_grid_raises():
    with pytest.raises(LedgerError, match="unknown sweep grid"):
        sweep_points("gigantic")


def test_every_grid_is_buildable():
    for name in GRIDS:
        pts = sweep_points(name)
        assert pts, name
        ids = [p["run_id"] for p in pts]
        assert len(ids) == len(set(ids)), f"{name}: duplicate run_ids"
        for p in pts:
            assert {"platform", "approach", "n", "n_gpus", "n_streams",
                    "batch_size", "pinned_elements",
                    "memcpy_threads"} <= set(p)


def test_ledger_record_schema(tiny_records):
    for rec in tiny_records:
        assert rec["schema"] == LEDGER_SCHEMA
        assert rec["run_id"]
        assert set(rec["measured"]) == {
            "makespan_s", "elapsed_s", "related_work_s",
            "missing_overhead_s", "throughput_el_per_s"}
        assert rec["report"]["makespan_s"] == \
            rec["conformance"]["measured_s"]
        assert rec["point"]["n"] == rec["conformance"]["n"]


def test_conformance_attached_to_result_metrics():
    from repro.hw.platforms import get_platform
    from repro.model.lowerbound import measure_bline_throughput
    pt = sweep_points("tiny")[0]
    model = measure_bline_throughput(get_platform(pt["platform"]),
                                     n_gpus=pt["n_gpus"], n=4_000_000)
    res = run_point(pt)
    assert res.conformance is None
    rec = ledger_record(res, pt, model)
    assert res.metrics["conformance"] is rec["conformance"]
    assert res.conformance == rec["conformance"]


def test_ledger_is_byte_stable(tmp_path):
    """Same grid, same seed -> byte-identical ledger files (the CI
    conformance gate's foundational property)."""
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_ledger(run_sweep(sweep_points("tiny"), model_n=4_000_000), a)
    write_ledger(run_sweep(sweep_points("tiny"), model_n=4_000_000), b)
    assert a.read_bytes() == b.read_bytes()


def test_ledger_round_trip(tmp_path, tiny_records):
    path = tmp_path / "ledger.jsonl"
    write_ledger(tiny_records, path)
    loaded = load_ledger(path)
    assert loaded == json.loads(
        json.dumps(tiny_records))  # tuples etc. normalised away


def test_load_ledger_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": "repro.sweep/v1"}\nnot json\n')
    with pytest.raises(LedgerError, match="not valid JSON"):
        load_ledger(path)


def test_load_ledger_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": "somebody.else/v9"}\n')
    with pytest.raises(LedgerError, match="unknown ledger schema"):
        load_ledger(path)


def test_run_sweep_reports_progress(tiny_records):
    lines = []
    run_sweep(sweep_points("tiny"), model_n=4_000_000,
              progress=lines.append)
    assert len(lines) == len(tiny_records)
    assert all("measured" in ln and "model" in ln for ln in lines)
