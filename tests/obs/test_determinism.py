"""Determinism regression: identical runs -> identical observability.

Two runs with the same configuration must produce byte-identical
chrome-trace JSON (spans AND counter tracks) and equal metrics dicts.
This pins down the guarantee that recording metrics never perturbs the
simulation and that export ordering is fully deterministic.
"""

import json

import pytest

from repro.hetsort import APPROACH_RUNNERS, HeterogeneousSorter
from repro.hw.platforms import PLATFORM1
from repro.reporting.chrometrace import to_chrome_trace


def run_once(approach):
    kw = {} if approach == "bline" else {"batch_size": 250_000}
    sorter = HeterogeneousSorter(PLATFORM1, pinned_elements=50_000, **kw)
    return sorter.sort(n=1_000_000, approach=approach)


@pytest.mark.parametrize("approach", sorted(APPROACH_RUNNERS))
def test_repeated_runs_identical(approach):
    a = run_once(approach)
    b = run_once(approach)

    assert a.elapsed == b.elapsed
    assert a.metrics == b.metrics

    ja = json.dumps(to_chrome_trace(a.trace, counters=a.recorder),
                    sort_keys=True)
    jb = json.dumps(to_chrome_trace(b.trace, counters=b.recorder),
                    sort_keys=True)
    assert ja == jb  # byte-identical, counter tracks included

    # And the counter tracks and causal flow events are really in there.
    events = json.loads(ja)
    assert any(e["ph"] == "C" for e in events)
    assert any(e["ph"] == "s" for e in events)
    assert any(e["ph"] == "f" for e in events)


@pytest.mark.parametrize("approach", sorted(APPROACH_RUNNERS))
def test_causal_reports_byte_identical(approach):
    """Critical-path reports and self-diffs are byte-stable across
    same-seed runs -- the property the regression gate rests on."""
    from repro.obs import diff_reports, run_report

    a = run_once(approach)
    b = run_once(approach)

    ca = json.dumps(a.critical_path_report(), sort_keys=True)
    cb = json.dumps(b.critical_path_report(), sort_keys=True)
    assert ca == cb

    ra, rb = run_report(a), run_report(b)
    assert json.dumps(ra, sort_keys=True) == json.dumps(rb, sort_keys=True)
    d = diff_reports(ra, rb)
    assert d["zero"] and not d["regression"]
