"""Conformance tests: exact residual attribution, fits, anomaly flags,
and the whatif(k=1) identity property."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.causal import WAIT, whatif_report
from repro.obs.conformance import (conformance_record, conformance_summary,
                                   fit_line, group_conformance, group_key,
                                   residual_attribution)
from repro.obs.diff import canonical_json, run_report
from repro.obs.sweep import run_sweep, sweep_points


@pytest.fixture(scope="module")
def records():
    return run_sweep(sweep_points("tiny"), model_n=4_000_000)


@pytest.fixture(scope="module")
def one_run():
    from repro.hw.platforms import get_platform
    from repro.model.lowerbound import measure_bline_throughput
    from repro.obs.sweep import run_point
    pt = sweep_points("tiny")[1]          # the pipelined point
    model = measure_bline_throughput(get_platform(pt["platform"]),
                                     n_gpus=pt["n_gpus"], n=4_000_000)
    return run_point(pt), model


# ---------------------------------------------------------------------------
# Residual attribution
# ---------------------------------------------------------------------------

def _plain_sum(residuals: dict) -> float:
    """Left-to-right addition in key order -- what ``sum(values())``
    does after a canonical-JSON round trip."""
    s = 0.0
    for v in residuals.values():
        s += v
    return s


def test_residuals_sum_exactly_to_gap(records):
    for rec in records:
        c = rec["conformance"]
        assert _plain_sum(c["residuals"]) == c["gap_s"]


def test_residuals_survive_json_round_trip(records):
    for rec in records:
        c = json.loads(canonical_json(rec, indent=None))["conformance"]
        assert _plain_sum(c["residuals"]) == c["gap_s"]


@settings(max_examples=50, deadline=None)
@given(predicted=st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False))
def test_residual_sum_exact_for_any_prediction(one_run, predicted):
    res, _ = one_run
    report = run_report(res)
    out = residual_attribution(report, predicted)
    assert _plain_sum(out) == report["makespan_s"] - predicted


def test_residual_attribution_covers_lead_in():
    """A report whose critical path starts after t=0 attributes the
    lead-in to the WAIT pseudo-category."""
    report = {"makespan_s": 10.0,
              "critical_path": {"duration": 8.0,
                                "by_category": {"GPUSort": 8.0}}}
    out = residual_attribution(report, 5.0)
    assert set(out) == {"GPUSort", WAIT}
    assert out[WAIT] == pytest.approx(5.0 * 2.0 / 10.0)
    assert _plain_sum(out) == 5.0


# ---------------------------------------------------------------------------
# Fits and anomaly flags
# ---------------------------------------------------------------------------

def test_fit_line_recovers_affine():
    pts = [(n, 0.002 + 3e-9 * n) for n in
           (1e6, 2e6, 4e6, 8e6)]
    intercept, slope, r2 = fit_line(pts)
    assert intercept == pytest.approx(0.002, rel=1e-9)
    assert slope == pytest.approx(3e-9, rel=1e-9)
    assert r2 == pytest.approx(1.0)


def test_fit_line_degenerate_cases():
    assert fit_line([]) == (0.0, 0.0, 1.0)
    assert fit_line([(2e6, 4.0)]) == (0.0, 2e-6, 1.0)
    icpt, slope, r2 = fit_line([(1e6, 3.0), (1e6, 5.0)])
    assert (icpt, slope, r2) == (4.0, 0.0, 1.0)


def _synthetic(n, measured, run_id="r", platform="PLATFORM1", n_gpus=1):
    return {
        "run_id": f"{run_id}-n{n}",
        "point": {"platform": platform, "approach": "pipedata",
                  "n": n, "n_gpus": n_gpus, "n_streams": 2,
                  "batch_size": None, "pinned_elements": 50_000,
                  "memcpy_threads": 1},
        "conformance": {"n": n, "measured_s": measured,
                        "gap_s": 0.0, "slowdown": 1.0, "residuals": {},
                        "measured": measured,
                        "model": {"platform": platform, "n_gpus": n_gpus,
                                  "slope": 1e-8, "calibration_n": n}},
    }


def test_clean_group_has_no_anomalies(records):
    groups = group_conformance(records)
    assert all(not g["anomalies"] for g in groups.values())
    assert all(g["r2"] == pytest.approx(1.0) for g in groups.values())


def test_injected_outlier_is_flagged():
    recs = [_synthetic(int(k * 1e6), 0.01 * k) for k in range(1, 6)]
    recs.append(_synthetic(int(6e6), 0.60, run_id="outlier"))
    groups = group_conformance(recs)
    (group,) = groups.values()
    flagged = {a["run_id"]: a for a in group["anomalies"]}
    assert "outlier-n6000000" in flagged
    assert "relative" in flagged["outlier-n6000000"]["flags"]


def test_paper_slope_only_on_platform2():
    recs = [_synthetic(int(k * 1e6), 0.01 * k, platform="PLATFORM2")
            for k in range(1, 4)]
    groups = group_conformance(recs)
    (g,) = groups.values()
    assert g["paper_slope"] is not None
    assert g["fitted_vs_paper"] == pytest.approx(
        g["fitted_slope"] / g["paper_slope"])
    p1 = group_conformance([_synthetic(int(1e6), 0.01)])
    assert next(iter(p1.values()))["paper_slope"] is None


def test_summary_document(records):
    summary = conformance_summary(records)
    assert summary["schema"] == "repro.conformance_summary/v1"
    assert summary["n_runs"] == len(records)
    assert summary["n_groups"] == len({group_key(r) for r in records})
    assert summary["n_anomalies"] == len(summary["anomalies"])
    assert 0.0 < summary["mean_slowdown"] <= 1.5
    assert "fig11_slope_rel" in summary["paper_bands"]


# ---------------------------------------------------------------------------
# The whatif(k=1) identity property
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(cats=st.sets(st.sampled_from(
    ["GPUSort", "HtoD", "DtoH", "MCpy", "Sync"]), min_size=1))
def test_whatif_identity_preserves_conformance(one_run, cats):
    """Re-scheduling the causal DAG with every factor at 1.0 is a bit-
    exact fixed point, so the conformance record built from the whatif
    prediction is the run's own record: same measured makespan, same
    gap, same residual split."""
    res, model = one_run
    graph = res.causal_graph()
    wr = whatif_report(graph, {c: 1.0 for c in cats})
    assert wr["predicted_makespan"] == wr["measured_makespan"]
    report = run_report(res)
    assert wr["predicted_makespan"] == report["makespan_s"]
    # The fitted-model identity: a run whose measured time equals the
    # whatif(k=1) prediction lands exactly on its own conformance
    # record -- gap and residuals unchanged.
    c0 = conformance_record(report, model)
    report_whatif = dict(report, makespan_s=wr["predicted_makespan"])
    c1 = conformance_record(report_whatif, model)
    assert c1["measured_s"] == c0["measured_s"]
    assert c1["gap_s"] == c0["gap_s"]
    assert c1["residuals"] == c0["residuals"]


def test_slowdown_is_papers_metric(records):
    for rec in records:
        c = rec["conformance"]
        assert c["slowdown"] == pytest.approx(
            c["predicted_s"] / c["measured_s"])
        assert not math.isinf(c["slowdown"])
