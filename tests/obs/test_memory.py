"""Memory observatory unit tests: the allocation ledger's accounting,
the analytic capacity planner's exact worker geometry, and the
predicted-vs-measured conformance verdicts."""

import pytest

from repro.errors import MemoryLedgerError, PlanError
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.obs import (EV, EventBus, MemoryLedger, Sink, canonical_json,
                       measured_peaks, memory_conformance, plan_memory)

ELEM = 8  # bytes per float64 element


class _Collect(Sink):
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


# ---------------------------------------------------------------------------
# The ledger
# ---------------------------------------------------------------------------

def test_ledger_records_and_balances():
    led = MemoryLedger()
    led.device_alloc(0, 100, name="a")
    led.pinned_alloc(40, name="p", span=7)
    led.device_alloc(0, 50, name="b")
    led.device_free(0, 100, name="a")
    led.pinned_free(40, name="p")
    led.device_free(0, 50, name="b")
    assert led.balances == {"gpu0": 0, "pinned": 0}
    assert led.peaks == {"gpu0": 150, "pinned": 40}
    assert led.n_allocs == 3 and led.n_frees == 3
    assert led.leaks() == {}
    led.check_balanced()  # no raise
    # the pinned entry carries its allocation span id
    pinned = [e for e in led.entries if e["pool"] == "pinned"]
    assert pinned[0]["span"] == 7
    # running balance is recorded per entry
    assert [e["balance"] for e in led.entries
            if e["pool"] == "gpu0"] == [100, 150, 50, 0]


def test_ledger_clock_stamps_entries():
    t = [0.0]
    led = MemoryLedger(clock=lambda: t[0])
    led.device_alloc(0, 10)
    t[0] = 1.5
    led.device_free(0, 10)
    assert [e["t"] for e in led.entries] == [0.0, 1.5]


def test_ledger_leak_detection():
    led = MemoryLedger()
    led.device_alloc(1, 100)
    led.pinned_alloc(40)
    led.pinned_free(40)
    assert led.leaks() == {"gpu1": 100}
    with pytest.raises(MemoryLedgerError, match="gpu1=100 B"):
        led.check_balanced()


def test_ledger_negative_balance_is_impossible_accounting():
    led = MemoryLedger()
    led.device_alloc(0, 10)
    with pytest.raises(MemoryLedgerError, match="negative"):
        led.device_free(0, 20)


def test_ledger_rejects_negative_sizes():
    with pytest.raises(MemoryLedgerError):
        MemoryLedger().device_alloc(0, -1)


def test_ledger_timeline_and_headroom():
    led = MemoryLedger(capacities={"gpu0": 1000})
    led.device_alloc(0, 100)
    led.device_alloc(0, 300)
    led.device_free(0, 100)
    assert led.timeline("gpu0") == [(0.0, 0), (0.0, 100), (0.0, 400),
                                    (0.0, 300)]
    assert led.headroom("gpu0") == 600      # capacity - peak
    assert led.headroom("pinned") is None   # unknown capacity


def test_ledger_pools_sorted_pinned_last():
    led = MemoryLedger(capacities={"pinned": 10, "gpu1": 10, "gpu0": 10})
    assert led.pools() == ["gpu0", "gpu1", "pinned"]


def test_ledger_summary_and_document():
    led = MemoryLedger(capacities={"gpu0": 1000, "pinned": 500})
    led.device_alloc(0, 100)
    led.pinned_alloc(50)
    led.device_free(0, 100)
    led.pinned_free(50)
    assert led.summary() == {
        "peak_device_bytes": {"gpu0": 100}, "peak_pinned_bytes": 50,
        "n_allocs": 2, "n_frees": 2, "balanced": True}
    doc = led.to_dict()
    assert doc["schema"] == "repro.memory/v1"
    assert doc["balanced"] is True
    assert doc["pools"]["gpu0"] == {
        "capacity_bytes": 1000, "peak_bytes": 100, "balance_bytes": 0,
        "headroom_bytes": 900, "n_allocs": 1, "n_frees": 1}
    assert len(doc["entries"]) == 4
    canonical_json(doc)  # serialisable through the canonical path


def test_ledger_emits_bus_events_with_watermarks():
    sink = _Collect()
    bus = EventBus(clock=lambda: 0.0)
    bus.attach(sink)
    led = MemoryLedger(capacities={"gpu0": 1000})
    led.bus = bus
    led.device_alloc(0, 100, name="a")   # new peak -> watermark
    led.device_alloc(0, 50, name="b")    # new peak -> watermark
    led.device_free(0, 50, name="b")
    led.device_alloc(0, 20, name="c")    # below peak -> no watermark
    kinds = [e.kind for e in sink.events]
    assert kinds == [EV.MEM_ALLOC, EV.MEM_WATERMARK, EV.MEM_ALLOC,
                     EV.MEM_WATERMARK, EV.MEM_FREE, EV.MEM_ALLOC]
    marks = [e for e in sink.events if e.kind == EV.MEM_WATERMARK]
    assert [m.data["peak_bytes"] for m in marks] == [100, 150]
    assert marks[0].data["capacity_bytes"] == 1000


# ---------------------------------------------------------------------------
# The capacity planner
# ---------------------------------------------------------------------------

def test_planner_blocking_geometry():
    # BLINE: one worker on gpu0 holding 2 b_s elements + 2 p_s pinned.
    doc = plan_memory(PLATFORM1, 1_000_000, approach="bline",
                      pinned_elements=50_000)
    assert doc["schema"] == "repro.memplan/v1"
    assert doc["workers"] == {"gpu0": 1}
    assert doc["predicted"]["gpu0"] == 2 * 1_000_000 * ELEM
    assert doc["predicted"]["pinned"] == 2 * 50_000 * ELEM
    assert doc["ok"] and not doc["violations"]


def test_planner_pipelined_geometry():
    # PIPEDATA: one worker per (gpu, stream) with work.
    doc = plan_memory(PLATFORM1, 1_000_000, approach="pipedata",
                      n_streams=2, batch_size=250_000,
                      pinned_elements=50_000)
    assert doc["workers"] == {"gpu0": 2}
    assert doc["predicted"]["gpu0"] == 2 * (2 * 250_000 * ELEM)
    assert doc["predicted"]["pinned"] == 2 * (2 * 50_000 * ELEM)


def test_planner_multi_gpu_geometry():
    doc = plan_memory(PLATFORM2, 2_000_000, approach="pipedata",
                      n_gpus=2, n_streams=2, batch_size=250_000,
                      pinned_elements=50_000)
    assert doc["workers"] == {"gpu0": 2, "gpu1": 2}
    assert doc["predicted"]["gpu0"] == doc["predicted"]["gpu1"] \
        == 2 * (2 * 250_000 * ELEM)
    assert doc["predicted"]["pinned"] == 4 * (2 * 50_000 * ELEM)


def test_planner_pageable_staging_needs_no_pinned():
    doc = plan_memory(PLATFORM1, 1_000_000, approach="bline",
                      staging="pageable", pinned_elements=50_000)
    assert doc["predicted"]["pinned"] == 0
    assert doc["per_worker"]["pinned_bytes"] == 0


def test_planner_pinned_clamped_to_batch():
    # p_s is clamped to b_s by the plan, and the planner follows it.
    doc = plan_memory(PLATFORM1, 100_000, approach="bline",
                      pinned_elements=10_000_000)
    assert doc["point"]["pinned_elements"] == 100_000
    assert doc["predicted"]["pinned"] == 2 * 100_000 * ELEM


def test_planner_rejects_oversized_batch():
    # A batch that cannot fit on the device is rejected exactly where
    # the simulation would reject it -- before any simulation runs.
    with pytest.raises(PlanError, match="global memory"):
        plan_memory(PLATFORM2, 2_000_000_000, approach="bline",
                    batch_size=1_000_000_000)


def test_planner_flags_aggregate_pinned_oversubscription():
    # Each worker's buffers fit, but their sum exceeds what host DRAM
    # leaves after the 3n pageable working set.
    doc = plan_memory(PLATFORM1, 5_500_000_000, approach="pipedata",
                      n_streams=2, batch_size=250_000_000,
                      pinned_elements=250_000_000)
    assert not doc["ok"]
    assert not doc["pools"]["pinned"]["ok"]
    assert doc["pools"]["pinned"]["headroom_bytes"] < 0
    assert any("pinned staging buffers" in v for v in doc["violations"])
    assert doc["pools"]["gpu0"]["ok"]


def test_planner_rejects_config_plus_keywords():
    from repro.hetsort.config import SortConfig
    with pytest.raises(PlanError):
        plan_memory(PLATFORM1, 1_000_000, config=SortConfig(),
                    approach="bline")


# ---------------------------------------------------------------------------
# Conformance
# ---------------------------------------------------------------------------

def test_memory_conformance_exact_match():
    plan = plan_memory(PLATFORM1, 1_000_000, approach="bline",
                       pinned_elements=50_000)
    conf = memory_conformance(plan, dict(plan["predicted"]))
    assert conf["schema"] == "repro.memory_conformance/v1"
    assert conf["ok"]
    assert all(p["residual_bytes"] == 0 and p["rel"] == 0.0
               for p in conf["pools"].values())


def test_memory_conformance_flags_residuals():
    plan = plan_memory(PLATFORM1, 1_000_000, approach="bline",
                       pinned_elements=50_000)
    measured = dict(plan["predicted"])
    measured["gpu0"] += int(measured["gpu0"] * 0.05)  # 5% > 1% tolerance
    conf = memory_conformance(plan, measured)
    assert not conf["ok"]
    assert not conf["pools"]["gpu0"]["ok"]
    assert conf["pools"]["pinned"]["ok"]
    # a wider tolerance absorbs it
    assert memory_conformance(plan, measured, tolerance=0.10)["ok"]


def test_memory_conformance_zero_prediction_requires_zero_measurement():
    plan = plan_memory(PLATFORM1, 1_000_000, approach="bline",
                       staging="pageable")
    conf = memory_conformance(plan, {"gpu0": plan["predicted"]["gpu0"],
                                     "pinned": 1})
    assert not conf["ok"]
    assert conf["pools"]["pinned"]["rel"] is None


def test_measured_peaks_requires_a_ledger():
    class NoMem:
        metrics = {}
    with pytest.raises(MemoryLedgerError, match="no memory ledger"):
        measured_peaks(NoMem())
