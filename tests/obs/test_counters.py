"""Tests for live counter series and the recorder plumbing."""

import pytest

from repro.obs.counters import CounterSeries, MetricsRecorder
from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store


def test_series_basics():
    s = CounterSeries("q", unit="items")
    s.add(0.0, 1)
    s.add(1.0, 3)
    s.add(2.0, 0)
    assert len(s) == 3
    assert s.last == 0
    assert s.max() == 3
    assert s.min() == 0
    # Held 1 for 1s, 3 for 1s, 0 until t_end=4 (2s): mean = (1+3+0)/4.
    assert s.time_weighted_mean(4.0) == pytest.approx(1.0)


def test_series_same_instant_keeps_latest():
    s = CounterSeries("g")
    s.add(1.0, 5)
    s.add(1.0, 7)
    assert len(s) == 1
    assert s.last == 7


def test_series_rejects_time_travel():
    s = CounterSeries("g")
    s.add(2.0, 1)
    with pytest.raises(ValueError):
        s.add(1.0, 1)


def test_recorder_incr_accumulates():
    now = {"t": 0.0}
    rec = MetricsRecorder(clock=lambda: now["t"])
    rec.incr("done")
    now["t"] = 1.0
    rec.incr("done", 2)
    series = rec.series["done"]
    assert list(series.samples()) == [(0.0, 1.0), (1.0, 3.0)]
    summary = rec.summary(2.0)
    assert summary["done"]["last"] == 3.0
    assert summary["done"]["samples"] == 2


def test_resource_probe_samples_on_state_changes():
    env = Environment()
    rec = MetricsRecorder(clock=lambda: env.now)
    res = Resource(env, capacity=2, name="cores")
    res.probe = rec.probe("cores.in_use", lambda r: r.in_use)

    def task(delay):
        yield res.request(1)
        yield env.timeout(delay)
        res.release(1)

    env.process(task(1.0))
    env.process(task(2.0))
    env.run()
    series = rec.series["cores.in_use"]
    assert series.max() == 2
    assert series.last == 0
    # Integral of in_use over time == the resource's own accounting.
    assert series.time_weighted_mean(env.now) * env.now == pytest.approx(
        res.busy_unit_seconds())


def test_store_probe_tracks_depth():
    env = Environment()
    now = {"t": 0.0}
    rec = MetricsRecorder(clock=lambda: now["t"])
    store = Store(env, name="q")
    store.probe = rec.probe("q.depth", lambda s: len(s))
    store.put("a")
    now["t"] = 1.0
    store.put("b")
    now["t"] = 2.0
    ok, _ = store.try_get()
    assert ok
    series = rec.series["q.depth"]
    assert series.last == 1
    assert series.max() == 2


def test_environment_monitor_hook():
    env = Environment()
    ticks = []
    env.add_monitor(lambda e: ticks.append(e.now))

    def proc():
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc())
    env.run()
    assert ticks  # called on every processed event
    assert ticks == sorted(ticks)
    assert ticks[-1] == pytest.approx(3.0)
    env.remove_monitor(env._monitors[0])
    assert not env._monitors
