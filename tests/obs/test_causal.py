"""Tests for the causal span DAG: validation, critical path, slack and
what-if rescheduling.

The acceptance invariants are exercised against every approach of the
battery: the extracted critical path tiles the makespan exactly, the
what-if engine at k=1 reproduces the measured timeline bit-for-bit, and
the DAG itself is structurally sound (acyclic by construction, every
edge with non-negative lag).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hetsort import APPROACH_RUNNERS, HeterogeneousSorter
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.obs.causal import (WAIT, CausalGraphError, SpanGraph,
                              critical_path_report, sensitivity_report,
                              whatif_report)
from repro.sim.trace import CAT, Trace

APPROACHES = sorted(APPROACH_RUNNERS)

_cache: dict = {}


def run(approach, platform=PLATFORM1, n_gpus=1):
    key = (approach, platform.name, n_gpus)
    if key not in _cache:
        kw = {} if approach == "bline" else {"batch_size": 250_000}
        sorter = HeterogeneousSorter(platform, n_gpus=n_gpus,
                                     pinned_elements=50_000, **kw)
        _cache[key] = sorter.sort(n=1_000_000, approach=approach)
    return _cache[key]


# ---------------------------------------------------------------------------
# DAG structure
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
def test_graph_validates(approach):
    g = run(approach).causal_graph()       # validate() runs on build
    assert len(g) > 10
    assert g.edge_count() >= len(g) - len(g.roots())


@pytest.mark.parametrize("approach", APPROACHES)
def test_every_nonroot_reaches_a_root(approach):
    g = run(approach).causal_graph()
    # deps < id means id order is topological: walking parents always
    # terminates at a root.
    for s in g.spans:
        cur = s
        hops = 0
        while cur.deps:
            cur = g.spans[cur.deps[0]]
            hops += 1
            assert hops <= len(g)
        assert not cur.deps


@pytest.mark.parametrize("approach", APPROACHES)
def test_edges_have_nonnegative_lag(approach):
    g = run(approach).causal_graph()
    for parent_id, child_id in ((d, s.id) for s in g.spans
                                for d in s.deps):
        assert g.spans[child_id].start >= g.spans[parent_id].end - 1e-9


def test_validate_rejects_bad_graphs():
    t = Trace()
    t.record(CAT.HTOD, "a", 0.0, 1.0)
    t.record(CAT.DTOH, "b", 2.0, 3.0, deps=(0,))
    good = SpanGraph.from_trace(t)
    assert good.edge_count() == 1

    # Negative lag: child starts before its recorded dependency ends.
    bad = Trace()
    bad.record(CAT.HTOD, "a", 0.0, 2.0)
    bad.record(CAT.DTOH, "b", 1.0, 3.0, deps=(0,))
    with pytest.raises(CausalGraphError):
        SpanGraph.from_trace(bad)


def test_record_rejects_forward_and_unknown_deps():
    t = Trace()
    t.record(CAT.HTOD, "a", 0.0, 1.0)
    with pytest.raises(ValueError):
        t.record(CAT.DTOH, "b", 1.0, 2.0, deps=(5,))
    with pytest.raises(ValueError):
        t.record(CAT.DTOH, "c", 1.0, 2.0, deps=(1,))  # self-reference


# ---------------------------------------------------------------------------
# Critical path == makespan (the acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
def test_critical_path_duration_equals_makespan(approach):
    res = run(approach)
    report = res.critical_path_report()
    assert report["duration"] == res.trace.makespan()
    assert report["lead_in"] == 0.0


def test_critical_path_multi_gpu():
    res = run("pipemerge", platform=PLATFORM2, n_gpus=2)
    report = res.critical_path_report()
    assert report["duration"] == res.trace.makespan()


@pytest.mark.parametrize("approach", APPROACHES)
def test_attribution_sums_to_duration(approach):
    report = run(approach).critical_path_report()
    for key in ("by_category", "by_lane"):
        total = sum(report[key].values())
        assert total == pytest.approx(report["duration"], abs=1e-12)
    assert report["by_category"].get(WAIT, 0.0) == \
        pytest.approx(report["wait"], abs=1e-15)


@pytest.mark.parametrize("approach", APPROACHES)
def test_path_is_a_dependency_chain(approach):
    g = run(approach).causal_graph()
    path = g.critical_path()
    for earlier, later in zip(path, path[1:]):
        assert earlier.id in later.deps
        assert later.start >= earlier.end  # never overlapping


# ---------------------------------------------------------------------------
# Slack
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
def test_slack_nonnegative_and_bounded_on_path(approach):
    g = run(approach).causal_graph()
    slack = g.slack()
    assert all(s >= -1e-12 for s in slack)
    report = critical_path_report(g)
    for s in g.critical_path():
        assert slack[s.id] <= report["wait"] + 1e-9


def test_gapless_chain_has_zero_slack():
    t = Trace()
    t.record(CAT.HTOD, "a", 0.0, 1.0, deps=())
    t.record(CAT.GPUSORT, "b", 1.0, 3.0, deps=(0,))
    t.record(CAT.DTOH, "c", 3.0, 4.0, deps=(1,))
    t.record(CAT.MCPY, "side", 0.0, 1.5)   # 2.5s of headroom before c?
    g = SpanGraph.from_trace(t)
    slack = g.slack()
    assert slack[0] == slack[1] == slack[2] == 0.0
    assert slack[3] == pytest.approx(2.5)  # only bound by t1


# ---------------------------------------------------------------------------
# What-if
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", APPROACHES)
def test_whatif_identity_is_exact_fixed_point(approach):
    g = run(approach).causal_graph()
    for scale in ({}, {CAT.GPUSORT: 1.0},
                  {c: 1.0 for c in {s.category for s in g.spans}}):
        new_start, new_end = g.whatif(scale)
        assert new_start == [s.start for s in g.spans]
        assert new_end == [s.end for s in g.spans]
    assert g.whatif_makespan({}) == g.makespan


@pytest.mark.parametrize("approach", APPROACHES)
@pytest.mark.parametrize("category", [CAT.GPUSORT, CAT.MCPY,
                                      CAT.PINNED_ALLOC])
def test_whatif_monotone_in_k(approach, category):
    g = run(approach).causal_graph()
    makespans = [g.whatif_makespan({category: k})
                 for k in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)]
    assert makespans == sorted(makespans)
    assert makespans[3] == g.makespan      # k=1 in the middle


@pytest.mark.parametrize("approach", APPROACHES)
def test_whatif_preserves_dependency_feasibility(approach):
    g = run(approach).causal_graph()
    new_start, new_end = g.whatif({CAT.GPUSORT: 0.5, CAT.MCPY: 3.0})
    for s in g.spans:
        for d in s.deps:
            assert new_start[s.id] >= new_end[d] - 1e-9


def test_whatif_rejects_negative_factor():
    g = run("bline").causal_graph()
    with pytest.raises(ValueError):
        g.whatif({CAT.GPUSORT: -1.0})


def test_whatif_report_fields():
    g = run("pipemerge").causal_graph()
    rep = whatif_report(g, {CAT.GPUSORT: 0.5})
    assert rep["predicted_makespan"] < rep["measured_makespan"]
    assert rep["delta"] == rep["predicted_makespan"] - \
        rep["measured_makespan"]
    assert rep["speedup"] > 1.0


def test_sensitivity_report_covers_all_categories():
    g = run("pipemerge").causal_graph()
    rep = sensitivity_report(g, factors=(0.5, 2.0))
    cats = {s.category for s in g.spans}
    assert {r["category"] for r in rep["rows"]} == cats
    assert len(rep["rows"]) == 2 * len(cats)


# ---------------------------------------------------------------------------
# Property tests on synthetic DAGs
# ---------------------------------------------------------------------------


@st.composite
def feasible_traces(draw):
    """Random traces that satisfy the DAG invariants by construction."""
    n = draw(st.integers(min_value=1, max_value=25))
    t = Trace()
    cats = [CAT.HTOD, CAT.GPUSORT, CAT.MCPY, CAT.MERGE]
    for i in range(n):
        n_deps = draw(st.integers(min_value=0, max_value=min(i, 3)))
        deps = sorted(draw(st.sets(
            st.integers(min_value=0, max_value=i - 1),
            min_size=n_deps, max_size=n_deps))) if i else []
        earliest = max((t.spans[d].end for d in deps), default=0.0)
        gap = draw(st.floats(min_value=0.0, max_value=2.0))
        dur = draw(st.floats(min_value=0.0, max_value=5.0))
        start = earliest + gap
        t.record(cats[i % len(cats)], f"s{i}", start, start + dur,
                 lane=f"lane{i % 3}", deps=deps)
    return t


@settings(max_examples=60, deadline=None)
@given(feasible_traces())
def test_property_dag_invariants(trace):
    g = SpanGraph.from_trace(trace)          # validates: acyclic, lag >= 0
    report = critical_path_report(g)
    # The path always ends at t1, so its duration never exceeds (and,
    # net of the lead-in, always equals) the makespan.
    assert report["duration"] + report["lead_in"] == \
        pytest.approx(g.makespan, abs=1e-9)
    assert all(s >= -1e-9 for s in g.slack())
    # Identity what-if is exact.
    ns, ne = g.whatif({})
    assert ns == [s.start for s in g.spans]
    assert ne == [s.end for s in g.spans]


@settings(max_examples=40, deadline=None)
@given(feasible_traces(),
       st.floats(min_value=0.0, max_value=4.0))
def test_property_whatif_monotone(trace, k):
    g = SpanGraph.from_trace(trace)
    scaled = g.whatif_makespan({CAT.GPUSORT: k})
    if k <= 1.0:
        assert scaled <= g.makespan + 1e-9
    else:
        assert scaled >= g.makespan - 1e-9
