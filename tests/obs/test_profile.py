"""Profiling hooks: disabled by default, zero behavioural footprint.

The acceptance criterion: enabling the hooks changes no sorted output
and no simulated timeline -- only wall-clock statistics appear.
"""

import numpy as np
import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw.platforms import PLATFORM1
from repro.kernels.radix import sort_floats
from repro.obs import profile as prof
from repro.workloads import generate


@pytest.fixture(autouse=True)
def clean_profiling():
    prof.disable_profiling()
    prof.reset_profiling()
    yield
    prof.disable_profiling()
    prof.reset_profiling()


def test_disabled_by_default_records_nothing():
    assert not prof.profiling_enabled()
    sort_floats(np.array([3.0, 1.0, 2.0]))
    assert prof.profiling_stats() == {}


def test_enabled_records_stats_without_changing_results():
    data = np.array([5.0, -1.0, 3.0, 0.0, 2.0])
    baseline = sort_floats(data)
    prof.enable_profiling()
    profiled_out = sort_floats(data)
    prof.disable_profiling()
    np.testing.assert_array_equal(baseline, profiled_out)
    stats = prof.profiling_stats()
    assert "radix.sort_floats" in stats
    s = stats["radix.sort_floats"]
    assert s.calls == 1
    assert s.elements == len(data)
    assert s.total_s >= 0.0
    assert s.min_s <= s.max_s


def test_stats_accumulate_and_reset():
    prof.enable_profiling()
    sort_floats(np.array([2.0, 1.0]))
    sort_floats(np.array([4.0, 3.0, 0.0]))
    s = prof.profiling_stats()["radix.sort_floats"]
    assert s.calls == 2
    assert s.elements == 5
    assert s.mean_s == pytest.approx(s.total_s / 2)
    prof.reset_profiling()
    assert prof.profiling_stats() == {}


def test_profiling_does_not_change_timeline_or_output():
    """The hard guarantee: identical simulated timeline and identical
    sorted output with profiling on vs. off."""
    n = 40_000
    kw = dict(batch_size=10_000, pinned_elements=2_000, n_streams=2)
    data = generate(n, "uniform", seed=7)

    off = HeterogeneousSorter(PLATFORM1, **kw).sort(data.copy(),
                                                    approach="pipemerge")
    prof.enable_profiling()
    on = HeterogeneousSorter(PLATFORM1, **kw).sort(data.copy(),
                                                   approach="pipemerge")
    prof.disable_profiling()

    assert on.elapsed == off.elapsed
    assert len(on.trace.spans) == len(off.trace.spans)
    for sa, sb in zip(on.trace.spans, off.trace.spans):
        assert (sa.category, sa.label, sa.start, sa.end) == \
            (sb.category, sb.label, sb.start, sb.end)
    np.testing.assert_array_equal(on.output, off.output)
    # ... and the run really was profiled.
    assert prof.profiling_stats()["radix.sort_floats"].calls > 0


def test_size_of_errors_are_swallowed():
    @prof.profiled("boom", size_of=lambda *a, **k: 1 / 0)
    def fn(x):
        return x + 1

    prof.enable_profiling()
    assert fn(1) == 2
    assert prof.profiling_stats()["boom"].elements == 0


def test_stats_are_json_safe():
    """Even an empty accumulator serializes as strict JSON -- no bare
    ``inf`` in ``min_s``."""
    import json

    empty = prof.KernelStats("nothing")
    doc = json.dumps(empty.to_dict(), allow_nan=False)   # raises on inf
    assert json.loads(doc)["min_s"] == 0.0

    prof.enable_profiling()
    sort_floats(np.array([2.0, 1.0]))
    s = prof.profiling_stats()["radix.sort_floats"]
    loaded = json.loads(json.dumps(s.to_dict(), allow_nan=False))
    assert loaded["calls"] == 1
    assert 0.0 <= loaded["min_s"] <= loaded["max_s"]
    assert loaded["mean_s"] == pytest.approx(s.mean_s)


def test_min_s_tracks_the_fastest_call():
    s = prof.KernelStats("k")
    s.record(0.5)
    assert s.min_s == 0.5                 # first call seeds the minimum
    s.record(0.2)
    s.record(0.9)
    assert s.min_s == 0.2
    assert s.max_s == 0.9


def test_snapshot_is_frozen_and_sorted():
    prof.enable_profiling()
    sort_floats(np.array([2.0, 1.0]))
    snap = prof.snapshot()
    assert list(snap) == sorted(snap)
    frozen = snap["radix.sort_floats"]
    assert frozen == prof.profiling_stats()["radix.sort_floats"]
    assert frozen is not prof.profiling_stats()["radix.sort_floats"]

    sort_floats(np.array([4.0, 3.0, 0.0]))       # later calls...
    assert frozen.calls == 1                     # ...never mutate it
    assert prof.profiling_stats()["radix.sort_floats"].calls == 2
    prof.reset_profiling()
    assert frozen.calls == 1                     # reset doesn't either


# ---------------------------------------------------------------------------
# Merging and serialization (archive integration)
# ---------------------------------------------------------------------------


def test_merge_is_exact():
    a = prof.KernelStats("k")
    a.record(0.5, elements=100)
    a.record(0.1, elements=10)
    b = prof.KernelStats("k")
    b.record(0.3, elements=50)
    m = a.merge(b)
    assert (m.calls, m.elements) == (3, 160)
    assert m.total_s == pytest.approx(0.9)
    assert (m.min_s, m.max_s) == (0.1, 0.5)
    # neither operand was mutated
    assert a.calls == 2 and b.calls == 1


def test_merge_empty_side_contributes_nothing():
    """The empty accumulator's sentinel ``min_s == 0.0`` must never
    become the merged minimum."""
    a = prof.KernelStats("k")
    a.record(0.5)
    empty = prof.KernelStats("k")
    for m in (a.merge(empty), empty.merge(a)):
        assert (m.calls, m.min_s, m.max_s) == (1, 0.5, 0.5)
        assert m is not a                       # always a fresh copy
    both = prof.KernelStats("k").merge(prof.KernelStats("k"))
    assert both.calls == 0 and both.min_s == 0.0


def test_merge_rejects_name_mismatch():
    with pytest.raises(ValueError, match="different kernels"):
        prof.KernelStats("a").merge(prof.KernelStats("b"))


def test_from_dict_roundtrip_recomputes_derived():
    s = prof.KernelStats("k")
    s.record(0.2, elements=40)
    d = s.to_dict()
    d["mean_s"] = 999.0                 # derived fields are not trusted
    back = prof.KernelStats.from_dict(d)
    assert back == s
    assert back.mean_s == pytest.approx(0.2)


def test_merge_snapshots_unions_names():
    a = prof.KernelStats("radix")
    a.record(0.5, elements=10)
    b = prof.KernelStats("radix")
    b.record(0.1, elements=5)
    c = prof.KernelStats("merge")
    c.record(0.2)
    out = prof.merge_snapshots({"radix": a}, {"radix": b, "merge": c})
    assert list(out) == ["merge", "radix"]      # name-sorted
    assert out["radix"].calls == 2
    assert out["radix"].min_s == 0.1
    assert out["merge"] == c and out["merge"] is not c
    assert prof.merge_snapshots() == {}


def test_snapshot_to_jsonl_byte_stable():
    import json

    s = prof.KernelStats("k")
    s.record(0.25, elements=8)
    snap = {"k": s, "a": prof.KernelStats("a")}
    text = prof.snapshot_to_jsonl(snap)
    assert text == prof.snapshot_to_jsonl(dict(reversed(snap.items())))
    lines = text.splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["name"] == "a"   # name-sorted
    doc = json.loads(lines[1])
    assert doc["calls"] == 1 and doc["elements_per_s"] == 32.0
    assert text.endswith("\n")
    assert prof.snapshot_to_jsonl({}) == ""
