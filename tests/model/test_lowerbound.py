"""Tests for the Sec. IV-G lower-bound models."""

import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw.platforms import PLATFORM2
from repro.model.lowerbound import (LowerBoundModel, PAPER_SLOPE_1GPU,
                                    PAPER_SLOPE_2GPU,
                                    measure_bline_throughput, paper_slopes)


@pytest.fixture(scope="module")
def model_1gpu():
    return measure_bline_throughput(PLATFORM2, n_gpus=1)


@pytest.fixture(scope="module")
def model_2gpu():
    return measure_bline_throughput(PLATFORM2, n_gpus=2)


def test_model_is_linear(model_1gpu):
    assert model_1gpu.seconds(2 * 10 ** 9) == pytest.approx(
        2 * model_1gpu.seconds(10 ** 9))


def test_1gpu_slope_matches_paper(model_1gpu):
    """Paper: y = 6.278e-9 * n on PLATFORM2."""
    assert model_1gpu.slope == pytest.approx(PAPER_SLOPE_1GPU, rel=0.08)


def test_2gpu_slope_matches_paper(model_2gpu):
    """Paper: y = 3.706e-9 * n on PLATFORM2 (2 GPUs)."""
    assert model_2gpu.slope == pytest.approx(PAPER_SLOPE_2GPU, rel=0.15)


def test_2gpu_faster_but_not_2x(model_1gpu, model_2gpu):
    """Two GPUs improve throughput, but shared PCIe plus the unavoidable
    merge keep the gain below 2x."""
    ratio = model_1gpu.slope / model_2gpu.slope
    assert 1.3 < ratio < 2.0


def test_calibration_n_fits_device(model_1gpu):
    """The calibration size must fit on the GPU (2n elements)."""
    assert 2 * 8 * model_1gpu.calibration_n / model_1gpu.n_gpus \
        <= PLATFORM2.gpus[0].mem_bytes


def test_pipedata_beats_model_at_small_n_then_erodes(model_1gpu):
    """Fig. 11: at n = 1.4e9 PIPEDATA outperforms the lower-bound model
    thanks to stream overlap; as n grows the multiway merge erodes the
    advantage monotonically toward (the paper: slightly below) the
    model."""
    bs = int(3.5e8)
    s = HeterogeneousSorter(PLATFORM2, n_gpus=1, batch_size=bs,
                            n_streams=2)
    slowdowns = []
    for n in (int(1.4e9), int(2.8e9), int(4.9e9)):
        t = s.sort(n=n, approach="pipedata").elapsed
        slowdowns.append(model_1gpu.slowdown_of(t, n))
    assert slowdowns[0] > 1.1                # clearly beats the model
    assert slowdowns == sorted(slowdowns, reverse=True)  # erosion
    assert slowdowns[-1] == pytest.approx(1.0, abs=0.12)


def test_slowdown_metric(model_1gpu):
    """Paper reports PIPEDATA slowdown ~0.93x (1 GPU) at n = 4.9e9; our
    calibration lands within ~10% of parity there."""
    n = int(4.9e9)
    s = HeterogeneousSorter(PLATFORM2, n_gpus=1, batch_size=int(3.5e8),
                            n_streams=2)
    measured = s.sort(n=n, approach="pipedata").elapsed
    slowdown = model_1gpu.slowdown_of(measured, n)
    assert 0.8 <= slowdown <= 1.12


def test_slowdown_validation(model_1gpu):
    with pytest.raises(ValueError):
        model_1gpu.slowdown_of(0.0, 100)


def test_paper_slopes_accessor():
    assert paper_slopes() == {1: PAPER_SLOPE_1GPU, 2: PAPER_SLOPE_2GPU}


def test_explicit_n_override():
    m = measure_bline_throughput(PLATFORM2, n_gpus=1, n=int(2e8))
    assert m.calibration_n == int(2e8)
    assert m.slope > 0
