"""Differential tests against the paper's reported numbers.

The reproduction claims the simulated accounting lands inside the
documented :data:`repro.obs.conformance.PAPER_BANDS`; these tests are
the claim's enforcement (and the dashboard prints the bands so readers
can see how much slack is asserted).
"""

import pytest

from repro.hw.platforms import get_platform
from repro.model.endtoend import PAPER_FIG7_SECONDS, end_to_end_accounting
from repro.model.lowerbound import measure_bline_throughput, paper_slopes
from repro.obs.conformance import PAPER_BANDS


@pytest.fixture(scope="module")
def fig7_accounting():
    # The Fig. 7 methodology: BLINE at 6.4 GB of doubles, p_s = 1e6.
    return end_to_end_accounting(get_platform("PLATFORM1"),
                                 n=int(8e8), pinned_elements=10 ** 6)


@pytest.mark.parametrize("key,attr", [("HtoD_ours", "htod"),
                                      ("DtoH_ours", "dtoh")])
def test_fig7_transfers_within_band(fig7_accounting, key, attr):
    simulated = getattr(fig7_accounting, attr)
    paper = PAPER_FIG7_SECONDS[key]
    band = PAPER_BANDS["fig7_transfer_rel"][key]
    rel = abs(simulated - paper) / paper
    assert rel <= band, (
        f"{key}: simulated {simulated:.4f}s vs paper {paper:.4f}s is "
        f"{rel:.1%} off, outside the documented +/-{band:.0%} band")


@pytest.mark.parametrize("n_gpus", [1, 2])
def test_fig11_slopes_within_band(n_gpus):
    """The capacity-derived lower-bound slope on PLATFORM2 stays inside
    the documented band around the paper's Fig. 11 value."""
    model = measure_bline_throughput(get_platform("PLATFORM2"),
                                     n_gpus=n_gpus)
    paper = paper_slopes()[n_gpus]
    band = PAPER_BANDS["fig11_slope_rel"][n_gpus]
    rel = abs(model.slope - paper) / paper
    assert rel <= band, (
        f"{n_gpus} GPU slope {model.slope:.4e} vs paper {paper:.4e} is "
        f"{rel:.1%} off, outside the documented +/-{band:.0%} band")


def test_bands_are_documented_in_summary():
    """The bands the tests enforce are the bands the dashboard prints --
    one source of truth."""
    from repro.obs.conformance import conformance_summary
    summary = conformance_summary([])
    assert summary["paper_bands"] == PAPER_BANDS
