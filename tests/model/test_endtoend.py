"""Tests for the missing-overhead accounting (Sec. IV-E, Figs. 7-8)."""

import pytest

from repro.hw.platforms import PLATFORM1
from repro.model.endtoend import (PAPER_FIG7_SECONDS, end_to_end_accounting)


@pytest.fixture(scope="module")
def acct():
    # The Fig. 7 configuration: n = 8e8 (5.96 GiB), p_s = 1e6 elements.
    return end_to_end_accounting(PLATFORM1, n=int(8e8))


def test_transfer_times_match_paper(acct):
    """Ours: HtoD 0.536 s / DtoH 0.484 s; related work: 0.542 / 0.477.
    (We model both directions symmetrically, so both should land between
    those pairs.)"""
    assert acct.htod == pytest.approx(PAPER_FIG7_SECONDS["HtoD_ours"],
                                      rel=0.05)
    assert acct.dtoh == pytest.approx(PAPER_FIG7_SECONDS["DtoH_ours"],
                                      rel=0.12)


def test_sort_faster_than_transfers(acct):
    """Stehle & Jacobsen's observation, confirmed by the paper: the data
    transfers each take longer than the on-GPU sort."""
    assert acct.gpusort < acct.htod + acct.dtoh


def test_related_work_total_is_three_components(acct):
    assert acct.related_work_total == pytest.approx(
        acct.htod + acct.dtoh + acct.gpusort)


def test_missing_overhead_is_substantial(acct):
    """Fig. 8: the full BLINE time is far above the related-work total --
    the staging copies alone roughly double it."""
    assert acct.missing_overhead > 0.5 * acct.related_work_total
    assert acct.full_elapsed > 1.4 * acct.related_work_total


def test_mcpy_dominates_missing_overhead(acct):
    """Sec. IV-E1: with p_s = 1e6 the host-to-host copies, not the
    allocation, are the significant omitted overhead."""
    assert acct.mcpy > acct.pinned_alloc
    assert acct.mcpy > acct.sync


def test_pinned_alloc_small_with_small_ps(acct):
    """p_s = 1e6 elements: two staging buffers cost ~0.02 s -- tiny
    compared with allocating p_s = n (2.2 s, Sec. IV-E1)."""
    assert acct.pinned_alloc < 0.05
    full_alloc = PLATFORM1.hostmem.pinned_alloc_seconds(8 * 8e8)
    assert full_alloc == pytest.approx(2.2, rel=0.02)
    assert full_alloc > acct.related_work_total


def test_missing_overhead_scales_linearly():
    """Fig. 8: the gap grows with n (it is dominated by MCpy ~ n)."""
    a1 = end_to_end_accounting(PLATFORM1, n=int(2e8))
    a2 = end_to_end_accounting(PLATFORM1, n=int(8e8))
    assert a2.missing_overhead == pytest.approx(
        4 * a1.missing_overhead, rel=0.25)


def test_rows_structure(acct):
    rows = dict(acct.rows())
    assert rows["Related-work end-to-end"] < rows["Full end-to-end (BLine)"]
    assert set(rows) >= {"HtoD", "DtoH", "GPUSort", "MCpy (omitted)"}
