"""Tests for the missing-overhead accounting (Sec. IV-E, Figs. 7-8)."""

import pytest

from repro.hw.platforms import PLATFORM1
from repro.model.endtoend import (PAPER_FIG7_SECONDS, end_to_end_accounting)


@pytest.fixture(scope="module")
def acct():
    # The Fig. 7 configuration: n = 8e8 (5.96 GiB), p_s = 1e6 elements.
    return end_to_end_accounting(PLATFORM1, n=int(8e8))


def test_transfer_times_match_paper(acct):
    """Ours: HtoD 0.536 s / DtoH 0.484 s; related work: 0.542 / 0.477.
    (We model both directions symmetrically, so both should land between
    those pairs.)"""
    assert acct.htod == pytest.approx(PAPER_FIG7_SECONDS["HtoD_ours"],
                                      rel=0.05)
    assert acct.dtoh == pytest.approx(PAPER_FIG7_SECONDS["DtoH_ours"],
                                      rel=0.12)


def test_sort_faster_than_transfers(acct):
    """Stehle & Jacobsen's observation, confirmed by the paper: the data
    transfers each take longer than the on-GPU sort."""
    assert acct.gpusort < acct.htod + acct.dtoh


def test_related_work_total_is_three_components(acct):
    assert acct.related_work_total == pytest.approx(
        acct.htod + acct.dtoh + acct.gpusort)


def test_missing_overhead_is_substantial(acct):
    """Fig. 8: the full BLINE time is far above the related-work total --
    the staging copies alone roughly double it."""
    assert acct.missing_overhead > 0.5 * acct.related_work_total
    assert acct.full_elapsed > 1.4 * acct.related_work_total


def test_mcpy_dominates_missing_overhead(acct):
    """Sec. IV-E1: with p_s = 1e6 the host-to-host copies, not the
    allocation, are the significant omitted overhead."""
    assert acct.mcpy > acct.pinned_alloc
    assert acct.mcpy > acct.sync


def test_pinned_alloc_small_with_small_ps(acct):
    """p_s = 1e6 elements: two staging buffers cost ~0.02 s -- tiny
    compared with allocating p_s = n (2.2 s, Sec. IV-E1)."""
    assert acct.pinned_alloc < 0.05
    full_alloc = PLATFORM1.hostmem.pinned_alloc_seconds(8 * 8e8)
    assert full_alloc == pytest.approx(2.2, rel=0.02)
    assert full_alloc > acct.related_work_total


def test_missing_overhead_scales_linearly():
    """Fig. 8: the gap grows with n (it is dominated by MCpy ~ n)."""
    a1 = end_to_end_accounting(PLATFORM1, n=int(2e8))
    a2 = end_to_end_accounting(PLATFORM1, n=int(8e8))
    assert a2.missing_overhead == pytest.approx(
        4 * a1.missing_overhead, rel=0.25)


def test_rows_structure(acct):
    rows = dict(acct.rows())
    assert rows["Related-work end-to-end"] < rows["Full end-to-end (BLine)"]
    assert set(rows) >= {"HtoD", "DtoH", "GPUSort", "MCpy (omitted)"}


# ---------------------------------------------------------------------------
# The negative-gap guard (accounting on overlapped runs)
# ---------------------------------------------------------------------------

def test_accounting_from_result_matches_bline_runner():
    from repro.model.endtoend import accounting_from_result
    from repro.hetsort.sorter import HeterogeneousSorter
    sorter = HeterogeneousSorter(PLATFORM1, approach="bline",
                                 pinned_elements=10 ** 6)
    res = sorter.sort(n=int(2e8))
    via_result = accounting_from_result(res)
    direct = end_to_end_accounting(PLATFORM1, n=int(2e8))
    assert via_result == direct
    assert via_result.approach == "bline"
    assert via_result.missing_overhead > 0


def test_overlapped_run_raises_naming_the_approach():
    """Sec. IV-E sums serial component durations; on a pipelined run the
    components overlap, the sum exceeds the elapsed time, and the
    missing overhead would come out negative.  That is a category error
    and must raise -- naming the offending approach."""
    from repro.errors import AccountingError
    from repro.hetsort.sorter import HeterogeneousSorter
    from repro.hw.platforms import PLATFORM2
    from repro.model.endtoend import accounting_from_result
    sorter = HeterogeneousSorter(PLATFORM2, n_gpus=2, approach="pipedata",
                                 n_streams=2, batch_size=int(5e7),
                                 pinned_elements=10 ** 6,
                                 memcpy_threads=8)
    res = sorter.sort(n=int(4e8))
    acct = accounting_from_result(res)           # building always works
    assert acct.related_work_total > acct.full_elapsed
    with pytest.raises(AccountingError) as exc:
        _ = acct.missing_overhead
    assert "pipedata" in str(exc.value)
    assert "does not apply" in str(exc.value)
