"""Tests for the simulated GPU device."""

import pytest

from repro.errors import CudaInvalidValue, CudaOutOfMemory
from repro.hw.gpu import SimGPU
from repro.hw.platforms import PLATFORM1
from repro.sim import CAT, Trace


@pytest.fixture
def gpu(env):
    return SimGPU(env, PLATFORM1.gpus[0], 0, Trace())


def test_memory_accounting(gpu):
    total = gpu.spec.mem_bytes
    gpu.alloc(total // 2)
    assert gpu.mem_free == total - total // 2
    gpu.alloc(total // 2)
    assert gpu.mem_free == total - 2 * (total // 2)
    gpu.free(total // 2)
    gpu.free(total // 2)
    assert gpu.mem_used == 0
    assert gpu.mem_high_water == 2 * (total // 2)


def test_oom_raises(gpu):
    with pytest.raises(CudaOutOfMemory):
        gpu.alloc(gpu.spec.mem_bytes + 1)
    gpu.alloc(gpu.spec.mem_bytes)
    with pytest.raises(CudaOutOfMemory):
        gpu.alloc(1)


def test_invalid_alloc_free(gpu):
    with pytest.raises(CudaInvalidValue):
        gpu.alloc(-1)
    with pytest.raises(CudaInvalidValue):
        gpu.free(1)


def test_sort_duration_and_span(env, gpu):
    n = int(5e8)
    proc = env.process(gpu.sort(n))
    env.run(proc)
    assert env.now == pytest.approx(gpu.spec.sort_seconds(n))
    spans = gpu.trace.filter(category=CAT.GPUSORT)
    assert len(spans) == 1
    assert spans[0].elements == n
    assert spans[0].lane == "gpu0"


def test_sorts_serialize_on_kernel_engine(env, gpu):
    n = int(1e8)
    env.process(gpu.sort(n))
    env.process(gpu.sort(n))
    env.run()
    assert env.now == pytest.approx(2 * gpu.spec.sort_seconds(n))


def test_sort_work_callback(env, gpu):
    ran = []
    proc = env.process(gpu.sort(100, work=lambda: ran.append(env.now)))
    env.run(proc)
    assert ran == [env.now]
