"""Calibration-anchor tests: the platform presets must reproduce the
numbers the paper reports (Table II + the measured anchors)."""

import pytest

from repro.hw.platforms import PLATFORM1, PLATFORM2, get_platform
from repro.hw.spec import GIB

# ---------------------------------------------------------------------------
# Table II structure
# ---------------------------------------------------------------------------


def test_platform1_table2():
    p = PLATFORM1
    assert p.cpu.cores == 16
    assert p.cpu.clock_ghz == 2.1
    assert p.n_gpus == 1
    assert p.gpus[0].model == "Quadro GP100"
    assert p.gpus[0].cuda_cores == 3584
    assert p.gpus[0].mem_bytes == 16 * GIB
    assert p.hostmem.capacity_bytes == 128 * GIB
    assert p.reference_threads == 16


def test_platform2_table2():
    p = PLATFORM2
    assert p.cpu.cores == 20
    assert p.cpu.clock_ghz == 2.6
    assert p.n_gpus == 2
    assert all(g.model == "Tesla K40m" for g in p.gpus)
    assert all(g.cuda_cores == 2880 for g in p.gpus)
    assert all(g.mem_bytes == 12 * GIB for g in p.gpus)
    assert p.reference_threads == 20


def test_get_platform_lookup():
    assert get_platform("platform1") is PLATFORM1
    assert get_platform("PLATFORM2") is PLATFORM2
    with pytest.raises(KeyError):
        get_platform("PLATFORM3")


# ---------------------------------------------------------------------------
# Measured anchors (Sec. IV / V)
# ---------------------------------------------------------------------------


def test_pinned_transfer_rate_anchor():
    """Pinned transfers run at ~12 GB/s = 75% of PCIe v3 peak (Sec. V);
    5.96 GiB in ~0.54 s (Fig. 7)."""
    for p in (PLATFORM1, PLATFORM2):
        rate = p.pcie.flow_cap(pinned=True)
        assert rate == pytest.approx(12e9, rel=0.01)
        t = 8 * 8e8 / rate
        assert t == pytest.approx(0.536, rel=0.02)


def test_pinned_vs_pageable_about_2x():
    ratio = (PLATFORM1.pcie.flow_cap(True)
             / PLATFORM1.pcie.flow_cap(False))
    assert 1.8 <= ratio <= 2.3


def test_pinned_alloc_anchors():
    hm = PLATFORM1.hostmem
    assert hm.pinned_alloc_seconds(8e6) == pytest.approx(0.01, rel=0.01)
    assert hm.pinned_alloc_seconds(6.4e9) == pytest.approx(2.2, rel=0.01)


def test_gnu_sort_speedup_anchors_platform1():
    gnu = PLATFORM1.sort_model("gnu")
    s_small = gnu.seconds(10 ** 5, 1) / gnu.seconds(10 ** 5, 16)
    s_large = gnu.seconds(10 ** 9, 1) / gnu.seconds(10 ** 9, 16)
    assert s_small == pytest.approx(3.17, rel=0.10)
    assert s_large == pytest.approx(10.12, rel=0.03)


def test_gnu_speedup_grows_with_n():
    """Fig. 4b: larger inputs scale better."""
    gnu = PLATFORM1.sort_model("gnu")
    speedups = [gnu.seconds(n, 1) / gnu.seconds(n, 16)
                for n in (10 ** 5, 10 ** 6, 10 ** 7, 10 ** 8, 10 ** 9)]
    assert speedups == sorted(speedups)


def test_qsort_half_of_std():
    std = PLATFORM1.sort_model("std")
    qsort = PLATFORM1.sort_model("qsort")
    n = 10 ** 7
    assert qsort.seconds(n) / std.seconds(n) == pytest.approx(2.0, rel=0.01)


def test_tbb_slower_than_gnu_for_large_inputs():
    gnu = PLATFORM1.sort_model("gnu")
    tbb = PLATFORM1.sort_model("tbb")
    assert tbb.seconds(10 ** 9, 16) > gnu.seconds(10 ** 9, 16)


def test_std_sort_equals_gnu_single_thread():
    gnu = PLATFORM1.sort_model("gnu")
    std = PLATFORM1.sort_model("std")
    n = 10 ** 8
    assert std.seconds(n) == pytest.approx(gnu.seconds(n, 1), rel=0.01)


def test_merge_anchors_platform1():
    m = PLATFORM1.merge
    n = 10 ** 9
    assert m.seconds(n, 1) == pytest.approx(7.0, rel=0.02)
    speedup = m.seconds(n, 1) / m.seconds(n, 16)
    assert speedup == pytest.approx(8.14, rel=0.01)


def test_multiway_factor_monotone_in_k():
    m = PLATFORM1.merge
    factors = [m.multiway_factor(k) for k in (2, 4, 8, 16, 32)]
    assert factors[0] == 1.0
    assert factors == sorted(factors)


def test_merge_flow_cap_below_bus_platform1():
    """On PLATFORM1 uncontended merges must not be throttled by the bus,
    otherwise the Fig. 6 standalone scalability anchor (8.14x at 16
    threads) would be violated.  (PLATFORM2's 20-thread merge slightly
    exceeds its bus -- physically plausible and un-anchored by the
    paper.)"""
    cap = PLATFORM1.merge.flow_cap(PLATFORM1.reference_threads, k=2)
    assert cap <= PLATFORM1.hostmem.copy_bus_bw
    cap2 = PLATFORM2.merge.flow_cap(PLATFORM2.reference_threads, k=2)
    assert cap2 <= 1.3 * PLATFORM2.hostmem.copy_bus_bw


def test_reference_sort_seconds_platform1():
    """Ref implementation at n = 5e9 lands near 71 s (so the paper's
    3.21x fastest-approach speedup is achievable)."""
    t = PLATFORM1.reference_sort_seconds(int(5e9))
    assert t == pytest.approx(71.0, rel=0.03)


def test_gpu_sort_seconds():
    g = PLATFORM1.gpus[0]
    assert g.sort_seconds(0) == 0.0
    # Fig. 7: GPUSort of 8e8 doubles takes less time than the 0.536 s HtoD.
    assert g.sort_seconds(int(8e8)) < 0.536


def test_k40_slower_than_gp100():
    assert PLATFORM2.gpus[0].sort_rate_f64 < PLATFORM1.gpus[0].sort_rate_f64
