"""Tests for the thread-scaling laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CalibrationError
from repro.hw import scaling


def test_amdahl_perfect_when_fully_parallel():
    assert scaling.amdahl_speedup(16, 0.0) == pytest.approx(16.0)


def test_amdahl_one_when_fully_serial():
    assert scaling.amdahl_speedup(16, 1.0) == pytest.approx(1.0)


def test_amdahl_single_thread_is_one():
    assert scaling.amdahl_speedup(1, 0.3) == pytest.approx(1.0)


def test_amdahl_fig6_anchor():
    """Serial fraction 0.0644 gives the paper's 8.14x merge speedup."""
    assert scaling.amdahl_speedup(16, 0.0644) == pytest.approx(8.14, rel=1e-2)


def test_amdahl_validation():
    with pytest.raises(CalibrationError):
        scaling.amdahl_speedup(0, 0.1)
    with pytest.raises(CalibrationError):
        scaling.amdahl_speedup(4, 1.5)


def test_parallel_seconds_spawn_overhead_dominates_small_work():
    t = scaling.parallel_seconds(1e-4, 16, 0.0, spawn_overhead_s=1e-3)
    assert t > 16e-3  # overhead term alone


def test_parallel_seconds_matches_amdahl_without_overhead():
    t1 = 10.0
    t = scaling.parallel_seconds(t1, 8, 0.05)
    assert t == pytest.approx(t1 / scaling.amdahl_speedup(8, 0.05))


def test_speedup_monotone_in_threads():
    prev = 0.0
    for t in (1, 2, 4, 8, 16):
        s = scaling.speedup(100.0, t, 0.04)
        assert s > prev
        prev = s


def test_speedup_of_zero_work_is_one():
    assert scaling.speedup(0.0, 16, 0.0) == 1.0


def test_fit_serial_fraction_roundtrip():
    for s in (0.0, 0.02, 0.1, 0.5):
        observed = scaling.amdahl_speedup(16, s)
        assert scaling.fit_serial_fraction(16, observed) == \
            pytest.approx(s, abs=1e-9)


def test_fit_serial_fraction_paper_anchor():
    assert scaling.fit_serial_fraction(16, 8.14) == pytest.approx(0.0644,
                                                                  abs=1e-3)


def test_fit_validation():
    with pytest.raises(CalibrationError):
        scaling.fit_serial_fraction(1, 1.0)
    with pytest.raises(CalibrationError):
        scaling.fit_serial_fraction(8, 9.0)  # superlinear impossible
    with pytest.raises(CalibrationError):
        scaling.fit_serial_fraction(8, 0.5)


@given(threads=st.integers(1, 64),
       frac=st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_property_speedup_bounded(threads, frac):
    s = scaling.amdahl_speedup(threads, frac)
    assert 1.0 - 1e-12 <= s <= threads + 1e-9


@given(threads=st.integers(2, 64),
       frac=st.floats(0.001, 0.999))
@settings(max_examples=60, deadline=None)
def test_property_fit_inverts_amdahl(threads, frac):
    observed = scaling.amdahl_speedup(threads, frac)
    recovered = scaling.fit_serial_fraction(threads, observed)
    assert recovered == pytest.approx(frac, rel=1e-6, abs=1e-9)
