"""Tests for the assembled Machine: primitives, contention, accounting."""

import pytest

from repro.errors import CudaOutOfMemory, SimulationError
from repro.hw import Direction, Machine, PLATFORM1, PLATFORM2
from repro.sim import CAT
from repro.sim.engine import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run(proc)
    return env.now


def test_machine_gpu_count_validation(env):
    with pytest.raises(SimulationError):
        Machine(env, PLATFORM1, n_gpus=2)
    m = Machine(env, PLATFORM2, n_gpus=2)
    assert len(m.gpus) == 2


def test_host_memcpy_duration(env):
    m = Machine(env, PLATFORM1)
    nbytes = 1e9
    run(env, m.host_memcpy(nbytes, threads=1))
    assert env.now == pytest.approx(
        nbytes / PLATFORM1.hostmem.per_core_copy_bw)
    assert m.trace.total(CAT.MCPY) == pytest.approx(env.now)


def test_parallel_memcpy_faster_up_to_bus(env):
    m = Machine(env, PLATFORM1)
    nbytes = 1e9
    run(env, m.host_memcpy(nbytes, threads=8))
    # 8 threads: capped by the bus, not 8x the single-core rate.
    assert env.now == pytest.approx(
        nbytes / PLATFORM1.hostmem.copy_bus_bw)


def test_pcie_transfer_pinned_rate(env):
    m = Machine(env, PLATFORM1)
    nbytes = 8 * 8e8   # 5.96 GiB
    run(env, m.pcie_transfer(m.gpus[0], nbytes, Direction.HTOD,
                             pinned=True))
    assert env.now == pytest.approx(0.536, rel=0.02)  # Fig. 7 anchor
    assert m.trace.total(CAT.HTOD) == pytest.approx(env.now)


def test_pcie_pageable_about_half_speed(env):
    m = Machine(env, PLATFORM1)
    nbytes = 1e9

    def both():
        yield from m.pcie_transfer(m.gpus[0], nbytes, Direction.HTOD,
                                   pinned=True)
        t_pinned = env.now
        yield from m.pcie_transfer(m.gpus[0], nbytes, Direction.HTOD,
                                   pinned=False)
        return t_pinned, env.now - t_pinned

    proc = env.process(both())
    env.run(proc)
    t_pinned, t_pageable = proc.value
    assert t_pageable / t_pinned == pytest.approx(2.0, rel=0.1)


def test_bidirectional_transfers_overlap(env):
    """HtoD and DtoH overlap on separate PCIe links/engines; their only
    shared constraint is the host memory bus, where they split the
    bandwidth fairly."""
    m = Machine(env, PLATFORM1)
    nbytes = 8 * 5e8

    def one(direction):
        yield from m.pcie_transfer(m.gpus[0], nbytes, direction,
                                   pinned=True)

    env.process(one(Direction.HTOD))
    env.process(one(Direction.DTOH))
    env.run()
    pinned = PLATFORM1.pcie.flow_cap(True)
    bus = PLATFORM1.hostmem.copy_bus_bw
    per_flow = min(pinned, bus / 2)
    expected = nbytes / per_flow
    serial = 2 * nbytes / pinned
    assert env.now == pytest.approx(expected, rel=0.01)
    assert env.now < serial * 0.8  # still much better than serial


def test_same_direction_transfers_serialize_on_copy_engine(env):
    """Two HtoD copies to one GPU queue on its single copy engine."""
    m = Machine(env, PLATFORM1)
    nbytes = 8 * 5e8

    def one():
        yield from m.pcie_transfer(m.gpus[0], nbytes, Direction.HTOD,
                                   pinned=True)

    env.process(one())
    env.process(one())
    env.run()
    solo = nbytes / PLATFORM1.pcie.flow_cap(True)
    assert env.now == pytest.approx(2 * solo, rel=0.01)


def test_two_gpus_share_pcie_link(env):
    """Concurrent HtoD to two GPUs exceeds the 16 GB/s link: each pinned
    flow wants 12 GB/s but they share 16 (Sec. IV-F, Experiment 2)."""
    m = Machine(env, PLATFORM2, n_gpus=2)
    nbytes = 12e9

    def one(g):
        yield from m.pcie_transfer(m.gpus[g], nbytes, Direction.HTOD,
                                   pinned=True)

    env.process(one(0))
    env.process(one(1))
    env.run()
    # Together: 24 GB total over a 16 GB/s link -> 1.5 s (not 1.0 s).
    assert env.now == pytest.approx(24e9 / 16e9, rel=0.02)


def test_host_merge_duration_and_category(env):
    m = Machine(env, PLATFORM1)
    n = int(1e9)
    run(env, m.host_merge(n, k=2, threads=16))
    assert env.now == pytest.approx(PLATFORM1.merge.seconds(n, 16, 2),
                                    rel=0.01)
    assert m.trace.count(CAT.MERGE) == 1


def test_multiway_merge_slower_than_pairwise(env):
    m = Machine(env, PLATFORM1)
    n = int(1e9)

    def seq():
        yield from m.host_merge(n, k=2, threads=16)
        t2 = env.now
        yield from m.host_merge(n, k=16, threads=16)
        return t2, env.now - t2

    proc = env.process(seq())
    env.run(proc)
    t2, t16 = proc.value
    assert t16 > t2


def test_merge_holds_cores(env):
    """A 16-thread merge must block other 16-core work."""
    m = Machine(env, PLATFORM1)
    order = []

    def merger():
        yield from m.host_merge(int(1e8), k=2, threads=16)
        order.append(("merge", env.now))

    def sorter():
        yield from m.cpu_sort(int(1e6), threads=16)
        order.append(("sort", env.now))

    env.process(merger())
    env.process(sorter())
    env.run()
    assert order[0][0] == "merge"
    assert order[1][1] > order[0][1]


def test_cpu_sort_duration(env):
    m = Machine(env, PLATFORM1)
    n = int(1e8)
    run(env, m.cpu_sort(n, library="gnu", threads=16))
    assert env.now == pytest.approx(
        PLATFORM1.sort_model("gnu").seconds(n, 16), rel=0.01)
    assert m.trace.count(CAT.CPUSORT) == 1


def test_pinned_alloc_cost_and_accounting(env):
    m = Machine(env, PLATFORM1)
    run(env, m.pinned_alloc(8e6))
    assert env.now == pytest.approx(0.01, rel=0.01)
    assert m.pinned_bytes == 8e6
    m.pinned_free(8e6)
    assert m.pinned_bytes == 0


def test_pinned_alloc_capacity_enforced(env):
    m = Machine(env, PLATFORM1)
    with pytest.raises(CudaOutOfMemory):
        env.run(env.process(m.pinned_alloc(200 * 1024 ** 3)))


def test_pinned_free_validation(env):
    m = Machine(env, PLATFORM1)
    with pytest.raises(SimulationError):
        m.pinned_free(1)


def test_sync_overhead_recorded(env):
    m = Machine(env, PLATFORM1)
    run(env, m.sync_overhead())
    assert env.now == pytest.approx(PLATFORM1.runtime.stream_sync_s)
    assert m.trace.count(CAT.SYNC) == 1


def test_invalid_direction_rejected(env):
    m = Machine(env, PLATFORM1)
    with pytest.raises(SimulationError):
        env.run(env.process(
            m.pcie_transfer(m.gpus[0], 8, "sideways")))


def test_functional_work_callback_runs(env):
    m = Machine(env, PLATFORM1)
    ran = []
    run(env, m.host_memcpy(8.0, work=lambda: ran.append(True)))
    assert ran == [True]
