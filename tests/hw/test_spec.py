"""Tests for the hardware/cost-model dataclasses and their validation."""

import pytest

from repro.errors import CalibrationError
from repro.hw.spec import (GIB, CPUSpec, GPUSpec, HostMemSpec,
                           MergeCostModel, PCIeSpec, PlatformSpec,
                           RuntimeCosts, SortCostModel)


def test_cpu_cores():
    cpu = CPUSpec("test", sockets=2, cores_per_socket=8, clock_ghz=2.0)
    assert cpu.cores == 16


def test_gpu_sort_seconds_affine():
    g = GPUSpec("g", 1000, GIB, sort_rate_f64=1e9, sort_overhead_s=0.01)
    assert g.sort_seconds(0) == 0.0
    assert g.sort_seconds(int(1e9)) == pytest.approx(1.01)


def test_pcie_flow_caps():
    p = PCIeSpec(peak_bw=16e9, pinned_efficiency=0.75,
                 pageable_efficiency=0.375)
    assert p.flow_cap(True) == pytest.approx(12e9)
    assert p.flow_cap(False) == pytest.approx(6e9)


def test_hostmem_pinned_alloc_affine():
    hm = HostMemSpec(capacity_bytes=GIB, copy_bus_bw=20e9,
                     per_core_copy_bw=10e9,
                     pinned_alloc_fixed_s=0.005,
                     pinned_alloc_per_byte_s=1e-9)
    assert hm.pinned_alloc_seconds(0) == pytest.approx(0.005)
    assert hm.pinned_alloc_seconds(1e6) == pytest.approx(0.005 + 1e-3)


def test_sort_cost_model_validation():
    with pytest.raises(CalibrationError):
        SortCostModel("bad", c_nlogn=-1.0)
    with pytest.raises(CalibrationError):
        SortCostModel("bad", c_nlogn=1e-9, serial_fraction=1.0)


def test_sort_cost_model_times():
    m = SortCostModel("m", c_nlogn=1e-9, serial_fraction=0.0,
                      spawn_overhead_s=0.0, max_threads=8)
    assert m.seq_seconds(0) == 0.0
    assert m.seq_seconds(1) == 0.0
    n = 1 << 20
    assert m.seq_seconds(n) == pytest.approx(1e-9 * n * 20)
    # Thread counts beyond max_threads are clamped.
    assert m.seconds(n, 64) == pytest.approx(m.seconds(n, 8))


def test_merge_cost_model_times():
    m = MergeCostModel(per_core_rate=1e8, serial_fraction=0.0,
                       spawn_overhead_s=0.0, multiway_alpha=1.0)
    n = int(1e8)
    assert m.seconds(n, 1, k=2) == pytest.approx(1.0)
    assert m.seconds(n, 2, k=2) == pytest.approx(0.5)
    # k = 4 doubles the per-element cost at alpha = 1 (log2(4)-1 = 1).
    assert m.seconds(n, 1, k=4) == pytest.approx(2.0)
    assert m.seconds(0, 4) == 0.0


def test_merge_flow_quantities_consistent():
    """flow_bytes / flow_cap must equal seconds() minus spawn overhead,
    whatever k is -- the flow-based and time-based views must agree."""
    m = MergeCostModel(per_core_rate=1.43e8, serial_fraction=0.0644,
                       spawn_overhead_s=0.0, multiway_alpha=0.9)
    n = int(5e8)
    for k in (2, 3, 10):
        for t in (1, 8, 16):
            t_flow = m.flow_bytes(n, k) / m.flow_cap(t, k)
            assert t_flow == pytest.approx(m.seconds(n, t, k), rel=1e-9)


def test_platform_spec_validation():
    cpu = CPUSpec("c", 1, 4, 2.0)
    gpu = GPUSpec("g", 100, GIB, 1e9)
    pcie = PCIeSpec(16e9)
    hm = HostMemSpec(GIB, 20e9, 10e9, 0.01, 1e-10)
    merge = MergeCostModel(1e8, 0.05)
    with pytest.raises(CalibrationError, match="at least one GPU"):
        PlatformSpec("p", cpu, (), pcie, hm, RuntimeCosts(), {}, merge, 4)
    with pytest.raises(CalibrationError, match="exceeds physical"):
        PlatformSpec("p", cpu, (gpu,), pcie, hm, RuntimeCosts(), {},
                     merge, reference_threads=8)


def test_platform_unknown_sort_library():
    from repro.hw.platforms import PLATFORM1
    with pytest.raises(CalibrationError, match="unknown CPU sort"):
        PLATFORM1.sort_model("nope")
