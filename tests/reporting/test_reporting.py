"""Tests for tables, figure series, and the ASCII Gantt renderer."""

import pytest

from repro.reporting import (FigureSeries, crossover, format_count,
                             format_seconds, render_gantt, render_table,
                             speedup_series)
from repro.sim.trace import CAT, Trace

# ---------------------------------------------------------------------------
# table
# ---------------------------------------------------------------------------


def test_render_table_alignment():
    out = render_table(["n", "time"], [[100, "1.5 s"], [5000, "12 s"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(l) == len(lines[0]) for l in lines[1:])
    assert "5000" in lines[3]


def test_render_table_title():
    out = render_table(["a"], [[1]], title="Figure 9")
    assert out.splitlines()[0] == "Figure 9"


def test_format_seconds_scales():
    assert format_seconds(123.4) == "123.4 s"
    assert format_seconds(1.5) == "1.500 s"
    assert format_seconds(0.0123) == "12.300 ms"
    assert format_seconds(5e-6) == "5.0 us"


def test_format_count():
    assert format_count(5e9) == "5e+09"
    assert format_count(1234) == "1,234"


# ---------------------------------------------------------------------------
# series
# ---------------------------------------------------------------------------


def test_series_add_and_at():
    s = FigureSeries("bline")
    s.add(1e9, 5.0)
    s.add(2e9, 10.0)
    assert s.at(2e9) == 10.0
    with pytest.raises(KeyError):
        s.at(3e9)


def test_series_x_monotonic():
    s = FigureSeries("x")
    s.add(2.0, 1.0)
    with pytest.raises(ValueError):
        s.add(1.0, 1.0)


def test_speedup_series():
    ref = FigureSeries("ref")
    fast = FigureSeries("fast")
    for x, r, f in [(1, 10.0, 5.0), (2, 20.0, 5.0)]:
        ref.add(x, r)
        fast.add(x, f)
    sp = speedup_series(ref, fast)
    assert sp.y == [2.0, 4.0]


def test_speedup_requires_same_grid():
    a = FigureSeries("a")
    b = FigureSeries("b")
    a.add(1, 1.0)
    b.add(2, 1.0)
    with pytest.raises(ValueError):
        speedup_series(a, b)


def test_crossover_found():
    a = FigureSeries("a")
    b = FigureSeries("b")
    for x, ya, yb in [(0, 0.0, 1.0), (1, 2.0, 1.0)]:
        a.add(x, ya)
        b.add(x, yb)
    assert crossover(a, b) == pytest.approx(0.5)


def test_crossover_none():
    a = FigureSeries("a")
    b = FigureSeries("b")
    for x in (0, 1):
        a.add(x, 1.0)
        b.add(x, 2.0)
    assert crossover(a, b) is None


# ---------------------------------------------------------------------------
# gantt
# ---------------------------------------------------------------------------


def test_gantt_renders_lanes_and_glyphs():
    t = Trace()
    t.record(CAT.HTOD, "h", 0.0, 1.0, lane="gpu0")
    t.record(CAT.MCPY, "m", 1.0, 2.0, lane="host")
    out = render_gantt(t, width=20)
    assert "gpu0" in out and "host" in out
    assert "H" in out and "m" in out


def test_gantt_empty_trace():
    assert render_gantt(Trace()) == "(empty trace)"


def test_gantt_width_respected():
    t = Trace()
    t.record(CAT.GPUSORT, "s", 0.0, 10.0, lane="gpu0")
    out = render_gantt(t, width=30)
    lane_line = [l for l in out.splitlines() if l.startswith("gpu0")][0]
    assert lane_line.count("S") == 30


def test_gantt_critical_overlay():
    from repro.obs.causal import SpanGraph
    t = Trace()
    t.record(CAT.HTOD, "h", 0.0, 1.0, lane="gpu0")
    t.record(CAT.GPUSORT, "s", 2.0, 4.0, lane="gpu0", deps=(0,))
    t.record(CAT.MCPY, "m", 0.0, 1.0, lane="host")
    g = SpanGraph.from_trace(t)
    out = render_gantt(t, width=40, critical=g.critical_path(),
                       slack=g.slack())
    lines = out.splitlines()
    crit = [l for l in lines if l.startswith("*critical*")][0]
    assert "H" in crit and "S" in crit
    assert "~" in crit                      # the 1s wait gap on the path
    gpu = [l for l in lines if l.startswith("gpu0")][0]
    host = [l for l in lines if l.startswith("host")][0]
    assert "crit=100%" in gpu and "slack=0ms" in gpu
    # m could end 3 s later (at t1) without growing the makespan.
    assert "crit=  0%" in host and "slack=3e+03ms" in host
    assert "~=wait(critical)" in lines[-1]


def test_gantt_without_critical_has_no_overlay():
    t = Trace()
    t.record(CAT.HTOD, "h", 0.0, 1.0, lane="gpu0")
    out = render_gantt(t, width=20)
    assert "*critical*" not in out and "crit=" not in out


# ---------------------------------------------------------------------------
# chrome trace export
# ---------------------------------------------------------------------------


def test_chrome_trace_events():
    import json

    from repro.reporting.chrometrace import to_chrome_trace, \
        write_chrome_trace
    t = Trace()
    t.record(CAT.HTOD, "h", 0.0, 1.0, lane="gpu0", nbytes=8.0,
             meta=(("chunk", 3),))
    t.record(CAT.MERGE, "m", 1.0, 3.0, lane="cpu", elements=100)
    events = to_chrome_trace(t)
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == 2
    assert len(metas) == 2                 # one thread_name per lane
    htod = next(e for e in xs if e["cat"] == CAT.HTOD)
    assert htod["ts"] == 0.0 and htod["dur"] == 1e6
    assert htod["args"] == {"bytes": 8.0, "chunk": 3}
    # lanes map to distinct tids
    assert len({e["tid"] for e in xs}) == 2
    assert json.dumps(events)              # serialisable


def test_chrome_trace_flow_events():
    from repro.reporting.chrometrace import to_chrome_trace
    t = Trace()
    t.record(CAT.MCPY, "stage", 0.0, 1.0, lane="host")
    t.record(CAT.HTOD, "htod", 1.0, 2.0, lane="stream0", deps=(0,))
    t.record(CAT.GPUSORT, "sort", 2.0, 3.0, lane="gpu0", deps=(1,))
    events = to_chrome_trace(t)
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 2
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    assert all(e["cat"] == "causal" for e in starts + finishes)
    assert all(e["bp"] == "e" for e in finishes)
    # Arrow 0: host lane @ stage.end -> stream0 lane @ htod.start.
    s0 = next(e for e in starts if e["id"] == 0)
    f0 = next(e for e in finishes if e["id"] == 0)
    lanes = {e["args"]["name"]: e["tid"] for e in events
             if e["ph"] == "M"}
    assert s0["tid"] == lanes["host"] and s0["ts"] == 1e6
    assert f0["tid"] == lanes["stream0"] and f0["ts"] == 1e6


def test_chrome_trace_no_deps_no_flows():
    from repro.reporting.chrometrace import to_chrome_trace
    t = Trace()
    t.record(CAT.HTOD, "h", 0.0, 1.0, lane="gpu0")
    assert not [e for e in to_chrome_trace(t) if e["ph"] in ("s", "f")]


def test_chrome_trace_roundtrip_to_file(tmp_path):
    import json

    from repro.reporting.chrometrace import write_chrome_trace
    t = Trace()
    t.record(CAT.GPUSORT, "sort", 0.5, 1.0, lane="gpu0")
    path = tmp_path / "trace.json"
    count = write_chrome_trace(t, str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == count
    assert doc["displayTimeUnit"] == "ms"


# ---------------------------------------------------------------------------
# Live memory bars
# ---------------------------------------------------------------------------

def test_format_bytes_scales_and_signs():
    from repro.reporting import format_bytes
    assert format_bytes(128) == "128 B"
    assert format_bytes(1_600) == "1.6 kB"
    assert format_bytes(6_400_000) == "6.4 MB"
    assert format_bytes(17_179_869_184) == "17.18 GB"
    assert format_bytes(-2_560_000_000) == "-2.56 GB"
    assert format_bytes(0) == "0 B"


def test_render_snapshot_memory_bars():
    from repro.reporting import render_snapshot
    snap = {"run": {"approach": "bline", "platform": "PLATFORM1"},
            "progress": {"batches_completed": 1, "n_batches": 2,
                         "fraction": 0.5},
            "t": 0.01,
            "memory": {"gpu0": {"bytes": 8_000_000,
                                "peak_bytes": 16_000_000,
                                "capacity_bytes": 16_000_000},
                       "pinned": {"bytes": 800_000,
                                  "peak_bytes": 800_000}}}
    text = render_snapshot(snap)
    assert "mem gpu0" in text
    assert "8.0 MB (peak 16.0 MB)" in text
    assert " 50%" in text                  # 8 of 16 MB against capacity
    # unknown capacity renders the indeterminate bar, not a crash
    assert "mem pinned" in text
    assert "?" in text.split("mem pinned")[1].splitlines()[0]


def test_live_aggregator_folds_memory_events():
    from repro.obs import LiveAggregator
    from repro.hetsort import HeterogeneousSorter
    from repro.hw.platforms import PLATFORM1
    agg = LiveAggregator()
    HeterogeneousSorter(PLATFORM1, batch_size=250_000,
                        pinned_elements=50_000).sort(
        n=1_000_000, approach="pipedata", sinks=(agg,))
    snap = agg.snapshot()
    assert set(snap["memory"]) == {"gpu0", "pinned"}
    assert list(snap["memory"])[-1] == "pinned"       # pinned sorts last
    assert snap["memory"]["gpu0"]["peak_bytes"] == 8_000_000
    assert snap["memory"]["gpu0"]["capacity_bytes"] == 17_179_869_184
    assert snap["memory"]["pinned"]["peak_bytes"] == 1_600_000
    assert snap["memory"]["gpu0"]["bytes"] == 0       # all released
