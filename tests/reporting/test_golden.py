"""Golden-output tests for ``repro.reporting.series`` and
``repro.reporting.table``: exact rendered text, pinned byte for byte,
including the empty-series and single-point edge cases."""

import pytest

from repro.reporting import (FigureSeries, crossover, format_count,
                             format_seconds, render_metrics_table,
                             render_table, sparkline, speedup_series)

# ---------------------------------------------------------------------------
# sparkline
# ---------------------------------------------------------------------------


def test_sparkline_golden():
    assert sparkline([0, 1, 2, 3, 4, 5, 6, 7]) == "▁▂▃▄▅▆▇█"
    assert sparkline([1.0, 1.0, 1.4, 1.4]) == "▁▁██"


def test_sparkline_empty_series():
    assert sparkline([]) == ""


def test_sparkline_single_point_and_flat():
    assert sparkline([3.0]) == "▅"             # middle level
    assert sparkline([2.0, 2.0, 2.0]) == "▅▅▅"  # zero range


def test_sparkline_marks_changepoints():
    assert sparkline([1.0] * 4 + [1.4] * 3, marks=[4]) == "▁▁▁▁|██"
    # a mark wins over the value at its index
    assert sparkline([1.0, 9.0], marks=[1]) == "▁|"


# ---------------------------------------------------------------------------
# FigureSeries
# ---------------------------------------------------------------------------


def test_figure_series_golden():
    s = FigureSeries("sort")
    s.add(1e6, 0.5)
    s.add(2e6, 1.0)
    assert s.rows() == [(1e6, 0.5), (2e6, 1.0)]
    assert s.at(2e6) == 1.0
    with pytest.raises(KeyError):
        s.at(3e6)
    with pytest.raises(ValueError):
        s.add(0.0, 1.0)                      # x must be non-decreasing


def test_figure_series_empty_and_single_point():
    empty = FigureSeries("e")
    assert empty.rows() == []
    single = FigureSeries("s")
    single.add(1.0, 2.0)
    assert single.rows() == [(1.0, 2.0)]
    assert single.at(1.0) == 2.0


def test_speedup_and_crossover():
    base = FigureSeries("cpu")
    cand = FigureSeries("gpu")
    for x, yb, yc in [(1.0, 2.0, 4.0), (2.0, 4.0, 4.0),
                      (3.0, 8.0, 4.0)]:
        base.add(x, yb)
        cand.add(x, yc)
    sp = speedup_series(base, cand)
    assert sp.name == "cpu/gpu"
    assert sp.y == [0.5, 1.0, 2.0]
    assert crossover(base, cand) == 2.0      # exact grid-point tie
    flat = FigureSeries("f")
    flat.add(1.0, 0.0)
    assert crossover(flat, flat) is None


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------


def test_render_table_golden():
    got = render_table(["n", "time"], [[1, 2.5], [10, 3.25]],
                       title="t")
    assert got == ("t\n"
                   " n  time\n"
                   "--  ----\n"
                   " 1   2.5\n"
                   "10  3.25")


def test_render_table_empty_rows():
    got = render_table(["a", "bb"], [])
    assert got == ("a  bb\n"
                   "-  --")


def test_render_table_single_row_left_aligned():
    got = render_table(["name", "v"], [["x", 1]], align_right=False)
    assert got == ("name  v\n"
                   "----  -\n"
                   "x     1")


def test_format_seconds_scales():
    assert format_seconds(123.4) == "123.4 s"
    assert format_seconds(1.5) == "1.500 s"
    assert format_seconds(0.0123) == "12.300 ms"
    assert format_seconds(5e-6) == "5.0 us"


def test_format_count_scales():
    assert format_count(1.5e9) == "1.5e+09"
    assert format_count(1234) == "1,234"
    assert format_count(12.5) == "12.500"


def test_render_metrics_table_minimal_golden():
    got = render_metrics_table({"makespan_s": 1.0, "elapsed_s": 1.5})
    assert got == (
        "run metrics\n"
        "metric                       value  \n"
        "---------------------------  -------\n"
        "makespan                     1.000 s\n"
        "elapsed (end-to-end)         1.500 s\n"
        "critical path (lower bound)  0.0 us \n"
        "overlap efficiency           1.000  \n"
        "stretch over critical path   1.000  \n"
        "related-work end-to-end      0.0 us \n"
        "missing overhead             0.0 us ")


def test_render_metrics_table_sections_appear():
    got = render_metrics_table({
        "makespan_s": 1.0,
        "lanes": {"": {"busy_s": 0.5, "idle_s": 0.5,
                       "utilization": 0.5, "bubbles": 0,
                       "bubble_s": 0.0}},
        "links": {"h2d": {"bytes": 8e9, "busy_s": 1.0,
                          "bytes_per_s": 8e9}},
    })
    assert "per-lane utilization" in got
    assert "(main)" in got
    assert "8.00 GB/s" in got
