"""Dashboard tests: structure, escaping, anomaly rendering, file I/O."""

import copy

import pytest

from repro.obs.conformance import conformance_summary
from repro.obs.sweep import run_sweep, sweep_points
from repro.reporting import render_dashboard, write_dashboard


@pytest.fixture(scope="module")
def records():
    return run_sweep(sweep_points("tiny"), model_n=4_000_000)


@pytest.fixture(scope="module")
def summary(records):
    return conformance_summary(records)


def test_dashboard_is_self_contained(records, summary):
    doc = render_dashboard(records, summary)
    assert doc.startswith("<!DOCTYPE html>")
    assert "<svg" in doc
    assert "http://" not in doc and "https://" not in doc  # no CDN deps
    assert "prefers-color-scheme" in doc                   # dark mode


def test_dashboard_panels_present(records, summary):
    doc = render_dashboard(records, summary)
    assert "Measured vs. model (Fig. 11)" in doc
    assert "Gap attribution" in doc
    assert "Sweep ledger" in doc
    assert "Per-run critical paths" in doc
    for rec in records:
        assert f'id="run-{rec["run_id"]}"' in doc   # anchors exist
        assert f'#run-{rec["run_id"]}' in doc       # and are linked to


def test_fig8_panel_needs_two_blocking_sizes(records, summary):
    # tiny has one bline point -> no Fig. 8 panel; ci has three.
    assert "Missing overhead (Fig. 8)" not in \
        render_dashboard(records, summary)
    ci = run_sweep(sweep_points("ci"), model_n=4_000_000)
    doc = render_dashboard(ci, conformance_summary(ci))
    assert "Missing overhead (Fig. 8)" in doc
    assert "related-work accounting" in doc


def test_clean_run_shows_no_anomaly_table(records, summary):
    doc = render_dashboard(records, summary)
    assert "no anomalies" in doc


def test_anomaly_rows_render_with_links(records, summary):
    rigged = copy.deepcopy(summary)
    rigged["anomalies"] = [{
        "run_id": records[0]["run_id"], "group": "PLATFORM1|g1|bline",
        "n": 1_000_000, "measured_s": 0.5, "expected_s": 0.1,
        "deviation_s": 0.4, "rel": 4.0, "z": 3.5,
        "flags": ["relative", "zscore"],
    }]
    rigged["n_anomalies"] = 1
    doc = render_dashboard(records, rigged)
    assert f'href="#run-{records[0]["run_id"]}"' in doc
    assert "relative, zscore" in doc
    assert "chip bad" in doc


def test_interpolated_strings_are_escaped(records, summary):
    evil = copy.deepcopy(records)
    evil[0]["run_id"] = '<script>alert(1)</script>'
    evil[0]["report"]["critical_path"]["by_category"] = {
        '<img src=x onerror=y>': 1.0}
    doc = render_dashboard(evil, summary)
    assert "<script>alert(1)</script>" not in doc
    assert "<img src=x" not in doc
    assert "&lt;script&gt;" in doc


def test_paper_band_note_rendered(records, summary):
    doc = render_dashboard(records, summary)
    assert "reproduction bands" in doc
    assert "test_paper_band" in doc


def test_write_dashboard(tmp_path, records, summary):
    path = tmp_path / "dash.html"
    write_dashboard(records, summary, path)
    text = path.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert text == render_dashboard(records, summary)


# ---------------------------------------------------------------------------
# Trend observatory panels
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trends():
    from repro.obs import make_entry, trend_summary
    step = [1.00, 1.02, 0.99, 1.01, 1.00, 1.40, 1.41, 1.39, 1.40, 1.42]
    entries = [make_entry(source="run", label=f"r{i}",
                          point={"approach": "bline", "n": 1000},
                          metrics={"makespan_s": v})
               for i, v in enumerate(step)]
    return trend_summary(entries)


def test_trend_dashboard_is_self_contained(trends):
    from repro.reporting import render_trend_dashboard
    doc = render_trend_dashboard(trends)
    assert doc.startswith("<!DOCTYPE html>")
    assert "<svg" in doc
    assert "http://" not in doc and "https://" not in doc


def test_trend_panel_shows_history_and_changepoint(trends):
    from repro.reporting import render_trend_dashboard
    doc = render_trend_dashboard(trends)
    assert "makespan_s" in doc
    assert 'stroke-dasharray="4 3"' in doc        # changepoint marker
    assert "re-baseline" in doc                   # ratchet chip
    # the sparkline twin renders the step with its | marker
    assert "|" in doc


def test_main_dashboard_embeds_trend_section(records, summary, trends):
    with_trends = render_dashboard(records, summary, trends=trends)
    assert "Performance over time" in with_trends
    assert "Performance over time" not in render_dashboard(records,
                                                           summary)


def test_write_trend_dashboard(tmp_path, trends):
    from repro.reporting import (render_trend_dashboard,
                                 write_trend_dashboard)
    path = tmp_path / "trends.html"
    write_trend_dashboard(trends, path)
    assert path.read_text() == render_trend_dashboard(trends)


# ---------------------------------------------------------------------------
# Memory observatory panels
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def memdoc():
    from repro.obs import MemoryLedger
    t = [0.0]
    led = MemoryLedger(clock=lambda: t[0],
                       capacities={"gpu0": 1000, "gpu1": 1000,
                                   "pinned": 500})
    led.pinned_alloc(50, name="stage_in")
    t[0] = 0.1
    led.device_alloc(0, 400, name="dev.g0")
    led.device_alloc(1, 200, name="dev.g1")
    t[0] = 0.5
    led.device_free(0, 400, name="dev.g0")
    led.device_free(1, 200, name="dev.g1")
    led.pinned_free(50, name="stage_in")
    return led.to_dict()


def test_memory_dashboard_is_self_contained(memdoc):
    from repro.reporting import render_memory_dashboard
    doc = render_memory_dashboard(memdoc)
    assert doc.startswith("<!DOCTYPE html>")
    assert "<svg" in doc
    assert "http://" not in doc and "https://" not in doc
    assert "prefers-color-scheme" in doc               # dark mode


def test_memory_dashboard_structure(memdoc):
    from repro.reporting import render_memory_dashboard
    doc = render_memory_dashboard(memdoc, title="bline on PLATFORM1")
    assert "Memory occupancy" in doc
    assert "bline on PLATFORM1" in doc
    assert "balanced" in doc                           # leak-check tile
    assert 'stroke-dasharray="4 3"' in doc             # watermark lines
    assert "high-watermark" in doc
    # every pool appears in the legend and the table
    for pool in ("gpu0", "gpu1", "pinned"):
        assert pool in doc


def test_memory_dashboard_flags_leaks(memdoc):
    import copy
    from repro.reporting import render_memory_dashboard
    leaky = copy.deepcopy(memdoc)
    leaky["balanced"] = False
    leaky["pools"]["gpu0"]["balance_bytes"] = 400
    doc = render_memory_dashboard(leaky)
    assert "LEAK" in doc
    assert "chip bad" in doc


def test_memory_dashboard_empty_ledger():
    from repro.reporting import render_memory_dashboard
    doc = render_memory_dashboard(
        {"schema": "repro.memory/v1", "pools": {}, "balanced": True,
         "entries": []})
    assert "empty ledger" in doc
    assert doc.startswith("<!DOCTYPE html>")


def test_memory_dashboard_single_pool():
    from repro.obs import MemoryLedger
    from repro.reporting import render_memory_dashboard
    led = MemoryLedger(capacities={"gpu0": 100})
    led.device_alloc(0, 60)
    led.device_free(0, 60)
    doc = render_memory_dashboard(led.to_dict())
    assert "gpu0" in doc
    assert "<svg" in doc


def test_memory_dashboard_escapes_pool_names(memdoc):
    import copy
    from repro.reporting import render_memory_dashboard
    evil = copy.deepcopy(memdoc)
    evil["pools"]['<script>alert(1)</script>'] = \
        evil["pools"].pop("gpu1")
    doc = render_memory_dashboard(evil)
    assert "<script>alert(1)</script>" not in doc
    assert "&lt;script&gt;" in doc


def test_write_memory_dashboard(tmp_path, memdoc):
    from repro.reporting import (render_memory_dashboard,
                                 write_memory_dashboard)
    path = tmp_path / "mem.html"
    write_memory_dashboard(memdoc, path)
    assert path.read_text() == render_memory_dashboard(memdoc)


def test_conformance_dashboard_accepts_memory_section(records, summary):
    from repro.obs import MemoryLedger
    led = MemoryLedger(capacities={"gpu0": 100})
    led.device_alloc(0, 10)
    led.device_free(0, 10)
    doc = render_dashboard(records, summary, memory=led.to_dict())
    assert "<h2>Memory occupancy</h2>" in doc
    # and stays absent when not passed
    assert "<h2>Memory occupancy</h2>" not in \
        render_dashboard(records, summary)
