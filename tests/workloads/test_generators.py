"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads import DISTRIBUTIONS, dataset_gib, generate


@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
def test_every_distribution_generates(dist):
    a = generate(10_000, dist, seed=3)
    assert len(a) == 10_000
    assert a.dtype == np.float64
    assert not np.isnan(a).any()


def test_deterministic_by_seed():
    assert np.array_equal(generate(1000, "uniform", seed=5),
                          generate(1000, "uniform", seed=5))
    assert not np.array_equal(generate(1000, "uniform", seed=5),
                              generate(1000, "uniform", seed=6))


def test_uniform_range():
    a = generate(100_000, "uniform", seed=0)
    assert a.min() >= 0.0 and a.max() < 1.0
    # Uniform: mean near 0.5.
    assert a.mean() == pytest.approx(0.5, abs=0.01)


def test_sorted_and_reverse():
    s = generate(5000, "sorted", seed=1)
    r = generate(5000, "reverse", seed=1)
    assert np.all(s[:-1] <= s[1:])
    assert np.all(r[:-1] >= r[1:])


def test_nearly_sorted_mostly_ordered():
    a = generate(10_000, "nearly_sorted", seed=2)
    inversions = np.sum(a[:-1] > a[1:])
    assert 0 < inversions < 0.1 * len(a)


def test_duplicates_few_distinct():
    a = generate(10_000, "duplicates", seed=4, distinct=8)
    assert len(np.unique(a)) <= 8


def test_zipf_skewed():
    a = generate(10_000, "zipf", seed=9)
    values, counts = np.unique(a, return_counts=True)
    # Heavy-tailed: the top few values dominate the distribution.
    top3 = np.sort(counts)[-3:].sum()
    assert top3 > 0.4 * len(a)


def test_unknown_distribution():
    with pytest.raises(ValidationError):
        generate(10, "cauchy")


def test_negative_size():
    with pytest.raises(ValidationError):
        generate(-1, "uniform")


def test_zero_size():
    assert len(generate(0, "uniform")) == 0


def test_dataset_gib():
    """The paper: n = 8e8 doubles = 5.96 GiB."""
    assert dataset_gib(int(8e8)) == pytest.approx(5.96, abs=0.01)
    assert dataset_gib(int(5e9)) == pytest.approx(37.25, abs=0.01)
