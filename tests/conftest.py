"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.sim.engine import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test data."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(params=["PLATFORM1", "PLATFORM2"])
def platform(request):
    """Parametrised over both evaluation platforms."""
    return {"PLATFORM1": PLATFORM1, "PLATFORM2": PLATFORM2}[request.param]
