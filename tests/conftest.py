"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.sim.engine import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test data."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(params=["PLATFORM1", "PLATFORM2"])
def platform(request):
    """Parametrised over both evaluation platforms."""
    return {"PLATFORM1": PLATFORM1, "PLATFORM2": PLATFORM2}[request.param]


@pytest.fixture
def shrunk_platform():
    """Factory: PLATFORM1 with artificially small memories (used by the
    failure-injection and chaos tests to exhaust capacity quickly)."""

    def make(gpu_mem_bytes=None, host_bytes=None):
        p = PLATFORM1
        gpus = p.gpus
        if gpu_mem_bytes is not None:
            gpus = tuple(dataclasses.replace(g, mem_bytes=gpu_mem_bytes)
                         for g in gpus)
        hostmem = p.hostmem
        if host_bytes is not None:
            hostmem = dataclasses.replace(hostmem,
                                          capacity_bytes=host_bytes)
        return dataclasses.replace(p, gpus=gpus, hostmem=hostmem)

    return make
