"""Tests for the max-min fair flow network, including hypothesis
property tests of conservation and fairness invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.bandwidth import FlowNetwork
from repro.sim.engine import Environment


def start_flow(env, net, links, nbytes, cap=math.inf, delay=0.0, out=None):
    def p():
        yield env.timeout(delay)
        ev = net.transfer(nbytes, links, cap=cap)
        yield ev
        if out is not None:
            out.append(env.now)

    return env.process(p())


def test_single_flow_duration(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 100.0)
    done = []
    start_flow(env, net, [link], 250.0, out=done)
    env.run()
    assert done == [pytest.approx(2.5)]


def test_equal_sharing_two_flows(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)
    done = []
    start_flow(env, net, [link], 10.0, out=done)
    start_flow(env, net, [link], 10.0, out=done)
    env.run()
    assert done == [pytest.approx(2.0), pytest.approx(2.0)]


def test_flow_cap_limits_rate(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 100.0)
    done = []
    start_flow(env, net, [link], 10.0, cap=2.0, out=done)
    env.run()
    assert done == [pytest.approx(5.0)]


def test_capped_flow_leaves_headroom_for_others(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)
    done = []
    # slow: cap 2 B/s, 10 B -> exactly 5 s regardless of the other flow.
    start_flow(env, net, [link], 10.0, cap=2.0, out=done)
    # fast: arrives at t=1, gets 8 B/s -> finishes at t=2.
    start_flow(env, net, [link], 8.0, delay=1.0, out=done)
    env.run()
    assert done == [pytest.approx(2.0), pytest.approx(5.0)]


def test_departure_speeds_up_remaining_flow(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)
    done = []
    start_flow(env, net, [link], 10.0, out=done)   # shares 5, then solo 10
    start_flow(env, net, [link], 5.0, out=done)    # shares 5 -> done at 1.0
    env.run()
    # flow2 finishes at t=1 (5 B at 5 B/s); flow1 then has 5 B left at
    # 10 B/s -> t=1.5.
    assert done == [pytest.approx(1.0), pytest.approx(1.5)]


def test_multi_link_flow_bottlenecked_by_narrowest(env):
    net = FlowNetwork(env)
    wide = net.add_link("wide", 100.0)
    narrow = net.add_link("narrow", 10.0)
    done = []
    start_flow(env, net, [wide, narrow], 50.0, out=done)
    env.run()
    assert done == [pytest.approx(5.0)]


def test_weighted_link_consumption(env):
    """A weight-2 flow drains a link twice as fast as its payload."""
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)
    done = []

    def p():
        ev = net.transfer(10.0, [(link, 2.0)])
        yield ev
        done.append(env.now)

    env.process(p())
    env.run()
    # payload rate = capacity / weight = 5 B/s -> 2 s for 10 B.
    assert done == [pytest.approx(2.0)]


def test_two_links_with_crossing_flows(env):
    """Flow A uses links 1+2, flow B only link 2: B gets the leftovers of
    link 2 after max-min sharing."""
    net = FlowNetwork(env)
    l1 = net.add_link("l1", 4.0)
    l2 = net.add_link("l2", 10.0)
    done = []
    start_flow(env, net, [l1, l2], 8.0, out=done)    # capped by l1 at 4
    start_flow(env, net, [l2], 12.0, out=done)       # gets 10 - 4 = 6
    env.run()
    assert done == [pytest.approx(2.0), pytest.approx(2.0)]


def test_zero_byte_transfer_completes_immediately(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)
    ev = net.transfer(0.0, [link])
    assert ev.triggered


def test_flow_without_link_needs_cap(env):
    net = FlowNetwork(env)
    with pytest.raises(SimulationError):
        net.transfer(10.0, [])


def test_pure_cap_flow_without_links(env):
    net = FlowNetwork(env)
    done = []

    def p():
        ev = net.transfer(10.0, [], cap=5.0)
        yield ev
        done.append(env.now)

    env.process(p())
    env.run()
    assert done == [pytest.approx(2.0)]


def test_foreign_link_rejected(env):
    net1 = FlowNetwork(env)
    net2 = FlowNetwork(env)
    link = net2.add_link("l", 10.0)
    with pytest.raises(SimulationError):
        net1.transfer(1.0, [link])


def test_negative_bytes_rejected(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)
    with pytest.raises(SimulationError):
        net.transfer(-1.0, [link])


def test_utilisation_accounting(env):
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)
    start_flow(env, net, [link], 20.0)
    env.run()
    # 20 bytes over a 10 B/s link == 2 full-capacity seconds.
    assert link.utilisation_seconds(env.now) == pytest.approx(2.0)


def test_large_scale_no_epsilon_spiral():
    """Regression: at large simulated times, float round-off used to
    strand a few bytes per flow and spin the network through endless
    zero-length wakeups (seen at n = 5e9, t ~ 30 s)."""
    env = Environment()
    net = FlowNetwork(env)
    link = net.add_link("l", 11e9)
    done = []

    def p():
        for _ in range(2000):
            yield net.transfer(8e6, [link], cap=9e9)
        done.append(env.now)

    env.process(p())
    env.run()
    assert done and done[0] == pytest.approx(2000 * 8e6 / 9e9, rel=1e-6)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

flow_lists = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=1e4),      # nbytes
        st.floats(min_value=0.1, max_value=1e3),      # cap
        st.floats(min_value=0.0, max_value=5.0),      # start delay
    ),
    min_size=1, max_size=12,
)


@given(flows=flow_lists,
       capacity=st.floats(min_value=1.0, max_value=1e3))
@settings(max_examples=60, deadline=None)
def test_conservation_and_completion(flows, capacity):
    """Every flow completes, and the makespan respects both the aggregate
    capacity bound and each flow's own cap bound."""
    env = Environment()
    net = FlowNetwork(env)
    link = net.add_link("l", capacity)
    finished = []

    def p(nbytes, cap, delay):
        yield env.timeout(delay)
        t0 = env.now
        yield net.transfer(nbytes, [link], cap=cap)
        finished.append((nbytes, cap, t0, env.now))

    for nbytes, cap, delay in flows:
        env.process(p(nbytes, cap, delay))
    env.run()

    assert len(finished) == len(flows)
    total_bytes = sum(f[0] for f in flows)
    first_start = min(f[2] for f in finished)
    last_end = max(f[3] for f in finished)
    # Aggregate work cannot beat link capacity.
    assert last_end - first_start >= total_bytes / capacity - 1e-6
    for nbytes, cap, t0, t1 in finished:
        # No flow can beat its own cap (tolerate the completion epsilon).
        assert t1 - t0 >= nbytes / min(cap, capacity) - 1e-6


@given(n_flows=st.integers(min_value=1, max_value=10),
       capacity=st.floats(min_value=1.0, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_identical_flows_finish_together(n_flows, capacity):
    """Symmetric flows starting together must finish at the same instant
    (max-min fairness gives them identical rates throughout)."""
    env = Environment()
    net = FlowNetwork(env)
    link = net.add_link("l", capacity)
    ends = []

    def p():
        yield net.transfer(100.0, [link])
        ends.append(env.now)

    for _ in range(n_flows):
        env.process(p())
    env.run()
    assert len(set(round(e, 9) for e in ends)) == 1
    assert ends[0] == pytest.approx(100.0 * n_flows / capacity)
