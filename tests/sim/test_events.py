"""Tests for event primitives: triggering, conditions, failure handling."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Condition, Event


def test_event_lifecycle(env):
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(5)
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.processed
    assert ev.ok and ev.value == 5


def test_double_succeed_rejected(env):
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_succeed_after_fail_rejected(env):
    ev = env.event()
    ev.fail(RuntimeError("x"))
    ev.defuse()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_requires_exception(env):
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_rejected(env):
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_unhandled_failure_aborts_simulation(env):
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_defused_failure_is_silent(env):
    ev = env.event()
    ev.fail(RuntimeError("handled"))
    ev.defuse()
    env.run()  # no raise


def test_all_of_waits_for_every_event(env):
    evs = [env.timeout(d) for d in (3.0, 1.0, 2.0)]
    cond = env.all_of(evs)
    fired = []

    def p(env, cond):
        v = yield cond
        fired.append((env.now, len(v)))

    env.process(p(env, cond))
    env.run()
    assert fired == [(3.0, 3)]


def test_any_of_fires_on_first(env):
    evs = [env.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
    cond = env.any_of(evs)
    fired = []

    def p(env, cond):
        v = yield cond
        fired.append((env.now, sorted(v.values())))

    env.process(p(env, cond))
    env.run()
    assert fired == [(1.0, [1.0])]


def test_all_of_empty_fires_immediately(env):
    cond = env.all_of([])
    assert cond.triggered
    assert cond.value == {}


def test_all_of_values_map_events_to_results(env):
    a = env.timeout(1.0, value="a")
    b = env.timeout(2.0, value="b")
    cond = env.all_of([a, b])
    env.run()
    assert cond.value == {a: "a", b: "b"}


def test_condition_propagates_child_failure(env):
    good = env.timeout(5.0)
    bad = env.event()

    def failer(env, ev):
        yield env.timeout(1.0)
        ev.fail(ValueError("child failed"))

    cond = env.all_of([good, bad])
    caught = []

    def waiter(env, cond):
        try:
            yield cond
        except ValueError as exc:
            caught.append(str(exc))

    env.process(failer(env, bad))
    env.process(waiter(env, cond))
    env.run()
    assert caught == ["child failed"]


def test_condition_rejects_mixed_environments(env):
    from repro.sim.engine import Environment
    other = Environment()
    with pytest.raises(SimulationError):
        env.all_of([env.timeout(1.0), other.timeout(1.0)])


def test_condition_with_already_processed_children(env):
    a = env.timeout(1.0)
    env.run()          # a is processed
    cond = env.all_of([a])
    assert cond.triggered


def test_trigger_copies_state(env):
    src = env.event()
    dst = env.event()
    src.succeed("payload")
    dst.trigger(src)
    assert dst.triggered and dst.value == "payload"
