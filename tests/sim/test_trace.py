"""Tests for span tracing and component aggregation."""

import pytest

from repro.sim.trace import CAT, Trace


def make_trace():
    t = Trace()
    t.record(CAT.HTOD, "h1", 0.0, 1.0, lane="gpu0", nbytes=100)
    t.record(CAT.HTOD, "h2", 2.0, 3.0, lane="gpu0", nbytes=100)
    t.record(CAT.DTOH, "d1", 0.5, 2.5, lane="gpu0", nbytes=200)
    t.record(CAT.GPUSORT, "s1", 1.0, 2.0, lane="gpu0", elements=10)
    t.record(CAT.MCPY, "m1", 0.0, 0.5, lane="host", nbytes=50)
    return t


def test_total_sums_durations():
    t = make_trace()
    assert t.total(CAT.HTOD) == pytest.approx(2.0)
    assert t.total(CAT.DTOH) == pytest.approx(2.0)
    assert t.total("nope") == 0.0


def test_busy_time_collapses_overlap():
    t = Trace()
    t.record(CAT.HTOD, "a", 0.0, 2.0)
    t.record(CAT.HTOD, "b", 1.0, 3.0)   # overlaps a
    t.record(CAT.HTOD, "c", 5.0, 6.0)   # disjoint
    assert t.busy_time([CAT.HTOD]) == pytest.approx(4.0)
    assert t.total(CAT.HTOD) == pytest.approx(5.0)


def test_busy_time_all_categories():
    t = make_trace()
    # Spans cover [0, 3] continuously.
    assert t.busy_time() == pytest.approx(3.0)


def test_busy_time_by_lane():
    t = make_trace()
    assert t.busy_time(lane="host") == pytest.approx(0.5)


def test_breakdown_sorted_descending():
    t = make_trace()
    bd = t.breakdown()
    values = list(bd.values())
    assert values == sorted(values, reverse=True)
    assert set(bd) == {CAT.HTOD, CAT.DTOH, CAT.GPUSORT, CAT.MCPY}


def test_count_and_bytes():
    t = make_trace()
    assert t.count(CAT.HTOD) == 2
    assert t.bytes_moved(CAT.HTOD) == pytest.approx(200)
    assert t.bytes_moved(CAT.DTOH) == pytest.approx(200)


def test_makespan():
    t = make_trace()
    assert t.makespan() == pytest.approx(3.0)
    assert Trace().makespan() == 0.0


def test_lanes_first_seen_order():
    t = make_trace()
    assert t.lanes() == ["gpu0", "host"]


def test_filter():
    t = make_trace()
    assert len(t.filter(category=CAT.HTOD)) == 2
    assert len(t.filter(lane="gpu0")) == 4
    assert len(t.filter(category=CAT.HTOD, lane="host")) == 0


def test_span_duration_and_validation():
    t = Trace()
    s = t.record(CAT.SYNC, "x", 1.0, 1.5)
    assert s.duration == pytest.approx(0.5)
    with pytest.raises(ValueError):
        t.record(CAT.SYNC, "bad", 2.0, 1.0)


def test_related_work_categories():
    assert set(CAT.RELATED_WORK) == {CAT.HTOD, CAT.DTOH, CAT.GPUSORT}
    assert set(CAT.OMITTED) == {CAT.MCPY, CAT.PINNED_ALLOC, CAT.SYNC}


# ---------------------------------------------------------------------------
# Span ids, meta normalization, causal deps
# ---------------------------------------------------------------------------


def test_span_ids_are_recording_order():
    t = make_trace()
    assert [s.id for s in t.spans] == list(range(len(t.spans)))
    assert t.span_by_id(2) is t.spans[2]


def test_meta_mapping_normalized_to_sorted_pairs():
    t = Trace()
    a = t.record(CAT.MCPY, "a", 0.0, 1.0, meta={"threads": 4, "k": 2})
    b = t.record(CAT.MCPY, "b", 0.0, 1.0, meta=(("threads", 4), ("k", 2)))
    assert a.meta == (("k", 2), ("threads", 4))
    assert a.meta == b.meta
    assert a.meta_dict == {"threads": 4, "k": 2}
    assert t.record(CAT.MCPY, "c", 0.0, 1.0).meta == ()


def test_deps_accept_spans_ids_and_none():
    t = Trace()
    a = t.record(CAT.HTOD, "a", 0.0, 1.0)
    b = t.record(CAT.GPUSORT, "b", 1.0, 2.0, deps=(a, None, 0, a.id))
    assert b.deps == (0,)                  # deduplicated, None dropped
    c = t.record(CAT.DTOH, "c", 2.0, 3.0, deps=(b, a))
    assert c.deps == (0, 1)                # sorted


def test_deps_must_reference_recorded_spans():
    t = Trace()
    t.record(CAT.HTOD, "a", 0.0, 1.0)
    with pytest.raises(ValueError):
        t.record(CAT.DTOH, "b", 1.0, 2.0, deps=(7,))
    with pytest.raises(ValueError):        # forward/self reference
        t.record(CAT.DTOH, "b", 1.0, 2.0, deps=(1,))


def test_edges_enumeration():
    t = Trace()
    t.record(CAT.HTOD, "a", 0.0, 1.0)
    t.record(CAT.HTOD, "b", 0.0, 1.0)
    t.record(CAT.GPUSORT, "c", 1.0, 2.0, deps=(0, 1))
    assert list(t.edges()) == [(0, 2), (1, 2)]


def test_to_dict_from_dict_round_trip():
    t = Trace()
    t.record(CAT.HTOD, "a", 0.0, 1.0, lane="gpu0", nbytes=8.0,
             meta={"chunk": 1})
    t.record(CAT.GPUSORT, "b", 1.0, 2.0, lane="gpu0", elements=10,
             deps=(0,))
    doc = t.to_dict()
    back = Trace.from_dict(doc)
    assert back.spans == t.spans
    assert back.to_dict() == doc
