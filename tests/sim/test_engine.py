"""Tests for the discrete-event engine core."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment, Process
from repro.sim.events import Event


def test_time_starts_at_zero(env):
    assert env.now == 0.0


def test_timeout_advances_clock(env):
    done = []

    def p(env):
        yield env.timeout(2.5)
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done == [2.5]


def test_timeouts_fire_in_order(env):
    log = []

    def p(env, name, delay):
        yield env.timeout(delay)
        log.append(name)

    env.process(p(env, "late", 3.0))
    env.process(p(env, "early", 1.0))
    env.process(p(env, "mid", 2.0))
    env.run()
    assert log == ["early", "mid", "late"]


def test_same_time_events_fire_in_creation_order(env):
    """Deterministic FIFO tie-breaking at equal timestamps."""
    log = []

    def p(env, name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abcde":
        env.process(p(env, name))
    env.run()
    assert log == list("abcde")


def test_timeout_value_passed_through(env):
    got = []

    def p(env):
        v = yield env.timeout(1.0, value="payload")
        got.append(v)

    env.process(p(env))
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected(env):
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value(env):
    def p(env):
        yield env.timeout(1.0)
        return 42

    proc = env.process(p(env))
    assert env.run(proc) == 42


def test_nested_processes(env):
    def child(env):
        yield env.timeout(2.0)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return result, env.now

    proc = env.process(parent(env))
    assert env.run(proc) == ("child-result", 2.0)


def test_yield_from_composition(env):
    def inner(env):
        yield env.timeout(1.0)
        return 7

    def outer(env):
        v = yield from inner(env)
        yield env.timeout(1.0)
        return v * 2

    proc = env.process(outer(env))
    assert env.run(proc) == 14
    assert env.now == 2.0


def test_exception_in_process_propagates(env):
    def p(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    proc = env.process(p(env))
    with pytest.raises(ValueError, match="boom"):
        env.run(proc)


def test_failed_event_raises_at_yield_point(env):
    ev = env.event()

    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("failed-event"))

    env.process(waiter(env, ev))
    env.process(failer(env, ev))
    env.run()
    assert caught == ["failed-event"]


def test_run_until_time(env):
    ticks = []

    def p(env):
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(p(env))
    env.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert env.now == 5.5


def test_run_until_event_returns_value(env):
    ev = env.event()

    def p(env, ev):
        yield env.timeout(3.0)
        ev.succeed("done")

    env.process(p(env, ev))
    assert env.run(ev) == "done"
    assert env.now == 3.0


def test_run_until_past_time_rejected(env):
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_yield_non_event_raises(env):
    def p(env):
        yield 42

    proc = env.process(p(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run(proc)


def test_process_on_wrong_environment_rejected(env):
    other = Environment()

    def p(env, other):
        yield other.timeout(1.0)

    proc = env.process(p(env, other))
    with pytest.raises(SimulationError, match="different environment"):
        env.run(proc)


def test_already_processed_event_resumes_immediately(env):
    """Waiting on a processed event must not deadlock or defer."""
    ev = env.event()
    ev.succeed("x")
    log = []

    def p(env, ev):
        yield env.timeout(1.0)   # let ev get processed first
        v = yield ev
        log.append((env.now, v))

    env.process(p(env, ev))
    env.run()
    assert log == [(1.0, "x")]


def test_peek_and_step(env):
    def p(env):
        yield env.timeout(2.0)

    env.process(p(env))
    assert env.peek() == 0.0   # process-init event
    env.step()
    assert env.peek() == 2.0
    env.step()                 # timeout fires; process-completion remains
    assert env.peek() == 2.0
    env.step()
    assert env.peek() == float("inf")


def test_step_empty_queue_raises(env):
    with pytest.raises(SimulationError):
        env.step()


def test_process_is_alive(env):
    def p(env):
        yield env.timeout(1.0)

    proc = env.process(p(env))
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_process_requires_generator(env):
    with pytest.raises(SimulationError):
        Process(env, lambda: None)  # type: ignore[arg-type]


def test_many_processes_interleave_deterministically():
    """Two identical runs must produce identical interleavings, and time
    must never move backwards within a run."""
    from repro.sim.engine import Environment

    def simulate():
        env = Environment()
        log = []

        def p(env, name, period):
            for _ in range(3):
                yield env.timeout(period)
                log.append((env.now, name))

        for i in range(10):
            env.process(p(env, i, 1.0 + i * 0.1))
        env.run()
        return log

    first, second = simulate(), simulate()
    assert first == second
    assert all(a[0] <= b[0] for a, b in zip(first, first[1:]))
