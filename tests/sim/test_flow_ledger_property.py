"""Hypothesis battery for the flow ledger on random workloads: under
arbitrary flow join/leave and mid-run ``set_capacity`` sequences, the
sum of granted rates on every link never exceeds the capacity in
effect, and every flow's recorded rate timeline integrates to its
bytes transferred *bit for bit*."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.flows import (FlowLedger, attribute_contention,
                             link_timelines, link_utilization,
                             verify_contention, verify_rate_integral)
from repro.sim.bandwidth import FlowNetwork
from repro.sim.engine import Environment

flow_specs = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=1e4),          # nbytes
        st.sampled_from([(0,), (1,), (0, 1)]),            # link subset
        st.floats(min_value=1.0, max_value=2.0),          # weight
        st.floats(min_value=0.0, max_value=3.0),          # start delay
    ),
    min_size=1, max_size=10)

capacity_changes = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=4.0),          # at time
        st.integers(min_value=0, max_value=1),            # link index
        st.floats(min_value=2.0, max_value=400.0),        # new capacity
    ),
    max_size=3)


def _run(flows, caps, changes):
    env = Environment()
    net = FlowNetwork(env)
    names = ("l0", "l1")
    links = [net.add_link(n, c) for n, c in zip(names, caps)]
    net.ledger = FlowLedger(clock=lambda: env.now,
                            capacities=dict(zip(names, caps)))

    def p(nbytes, subset, weight, delay):
        yield env.timeout(delay)
        yield net.transfer(nbytes, [(links[i], weight) for i in subset])

    def chaos(at, idx, cap):
        yield env.timeout(at)
        net.set_capacity(links[idx], cap)

    for spec in flows:
        env.process(p(*spec))
    for change in changes:
        env.process(chaos(*change))
    env.run()
    assert net.active_flows == 0
    return net.ledger.to_dict()


@given(flows=flow_specs,
       cap0=st.floats(min_value=5.0, max_value=500.0),
       cap1=st.floats(min_value=5.0, max_value=500.0),
       changes=capacity_changes)
@settings(max_examples=60, deadline=None)
def test_granted_rates_never_exceed_capacity(flows, cap0, cap1, changes):
    doc = _run(flows, (cap0, cap1), changes)
    # capacity in effect at time t, from the ledgered change events
    for name, start_cap in (("l0", cap0), ("l1", cap1)):
        evs = sorted((t, c) for t, n, c in doc["capacity_events"]
                     if n == name)
        for t, load in link_timelines(doc)[name]:
            cap = start_cap
            for et, ec in evs:
                if et <= t:
                    cap = ec
            assert load <= cap * (1 + 1e-9)
    for name, series in link_utilization(doc).items():
        assert all(u <= 1 + 1e-9 for _, u in series)


@given(flows=flow_specs,
       cap0=st.floats(min_value=5.0, max_value=500.0),
       cap1=st.floats(min_value=5.0, max_value=500.0),
       changes=capacity_changes)
@settings(max_examples=60, deadline=None)
def test_rate_integral_equals_bytes_bitwise(flows, cap0, cap1, changes):
    doc = _run(flows, (cap0, cap1), changes)
    verdict = verify_rate_integral(doc)
    assert verdict["ok"], verdict["failures"]
    assert verdict["checked"] == len(flows)
    # ...and the bit-exact moved totals land on the requested bytes
    # (ledger order is join order, so compare as sorted multisets)
    assert sorted(f["moved"] for f in doc["flows"]) == pytest.approx(
        sorted(nbytes for nbytes, *_rest in flows), abs=1e-5)
    contention = attribute_contention(doc)
    assert verify_contention(contention)["ok"]


# ---------------------------------------------------------------------------
# The read-only snapshot views
# ---------------------------------------------------------------------------

def test_flow_and_link_snapshots():
    env = Environment()
    net = FlowNetwork(env)
    l0 = net.add_link("l0", 10.0)
    l1 = net.add_link("l1", 40.0)
    seen = {}

    def p():
        yield net.transfer(50.0, [(l0, 1.0), (l1, 2.0)], label="t")

    def peek():
        yield env.timeout(1.0)
        seen["flows"] = net.flow_snapshot()
        seen["links"] = net.link_snapshot()

    env.process(p())
    env.process(peek())
    env.run()

    (fv,) = seen["flows"]
    assert fv.label == "t" and fv.nbytes == 50.0
    assert fv.links == (("l0", 1.0), ("l1", 2.0))
    assert fv.rate == 10.0            # l0 is the bottleneck
    assert fv.progressed == pytest.approx(10.0)
    assert fv.remaining == pytest.approx(40.0)
    assert fv.start_time == 0.0

    views = {lv.name: lv for lv in seen["links"]}
    assert views["l0"].capacity == 10.0
    assert views["l0"].n_flows == 1
    assert views["l0"].utilization == pytest.approx(1.0)
    # weight 2 on l1: the flow consumes 20 of its 40 B/s
    assert views["l1"].rate == pytest.approx(20.0)
    assert views["l1"].utilization == pytest.approx(0.5)

    # drained network -> empty/idle views
    assert net.flow_snapshot() == ()
    assert all(lv.n_flows == 0 and lv.rate == 0.0
               for lv in net.link_snapshot())


def test_snapshots_are_read_only_tuples():
    env = Environment()
    net = FlowNetwork(env)
    net.add_link("l", 10.0)
    assert isinstance(net.link_snapshot(), tuple)
    with pytest.raises(AttributeError):
        net.link_snapshot()[0].capacity = 5.0
