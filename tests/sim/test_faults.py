"""Unit tests for the fault-plan data model and the injector runtime
(:mod:`repro.sim.faults`): validation, byte-stable serialisation,
seed-driven generation and op-ordinal matching semantics."""

import json

import pytest

from repro.errors import FaultPlanError
from repro.hw.machine import Machine
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.sim.faults import (FAULTS_SCHEMA, FaultInjector, FaultKind,
                              FaultPlan, FaultSpec)

# ---------------------------------------------------------------------------
# FaultSpec validation
# ---------------------------------------------------------------------------


def test_unknown_kind_rejected():
    with pytest.raises(FaultPlanError, match="unknown fault kind"):
        FaultSpec(kind="cosmic.ray")


def test_bad_direction_rejected():
    with pytest.raises(FaultPlanError, match="direction"):
        FaultSpec(kind="pcie.transient", direction="sideways")


@pytest.mark.parametrize("kw", [{"after": -1}, {"times": 0}])
def test_bad_counters_rejected(kw):
    with pytest.raises(FaultPlanError, match="after >= 0"):
        FaultSpec(kind="pcie.transient", **kw)


def test_negative_times_rejected():
    with pytest.raises(FaultPlanError, match=">= 0"):
        FaultSpec(kind="gpu.lost", gpu=0, at_s=-1.0)


def test_gpu_lost_needs_gpu_index():
    with pytest.raises(FaultPlanError, match="explicit gpu"):
        FaultSpec(kind="gpu.lost")


def test_bandwidth_window_validation():
    with pytest.raises(FaultPlanError, match="link"):
        FaultSpec(kind="bandwidth.degrade", link="carrier.pigeon",
                  duration_s=0.01, factor=0.5)
    with pytest.raises(FaultPlanError, match="factor"):
        FaultSpec(kind="bandwidth.degrade", link="host_bus",
                  duration_s=0.01, factor=0.0)
    with pytest.raises(FaultPlanError, match="factor"):
        FaultSpec(kind="bandwidth.degrade", link="host_bus",
                  duration_s=0.01, factor=1.5)
    with pytest.raises(FaultPlanError, match="duration_s"):
        FaultSpec(kind="bandwidth.degrade", link="host_bus", factor=0.5)


def test_spec_from_dict_rejects_unknown_fields_and_missing_kind():
    with pytest.raises(FaultPlanError, match="unknown FaultSpec field"):
        FaultSpec.from_dict({"kind": "pcie.transient", "blast_radius": 3})
    with pytest.raises(FaultPlanError, match="needs a 'kind'"):
        FaultSpec.from_dict({"gpu": 0})


# ---------------------------------------------------------------------------
# FaultPlan serialisation
# ---------------------------------------------------------------------------


def test_plan_json_round_trip_is_byte_stable(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", gpu=0, direction="HtoD",
                  after=2, times=3),
        FaultSpec(kind="bandwidth.degrade", link="pcie.dtoh",
                  at_s=0.01, duration_s=0.02, factor=0.25),
    ), seed=99)
    text = plan.to_json()
    assert plan.to_json() == text          # stable across calls
    assert FaultPlan.from_dict(json.loads(text)).to_json() == text

    path = tmp_path / "plan.json"
    plan.save(path)
    loaded = FaultPlan.load(path)
    assert loaded == plan
    assert loaded.to_json() == text


def test_plan_schema_enforced(tmp_path):
    with pytest.raises(FaultPlanError, match="schema"):
        FaultPlan.from_dict({"schema": "repro.faults/v99", "faults": []})
    with pytest.raises(FaultPlanError, match="must be an object"):
        FaultPlan.from_dict([1, 2, 3])
    with pytest.raises(FaultPlanError, match="must be a list"):
        FaultPlan.from_dict({"schema": FAULTS_SCHEMA, "faults": {}})

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(FaultPlanError, match="not valid JSON"):
        FaultPlan.load(bad)
    with pytest.raises(FaultPlanError, match="cannot read"):
        FaultPlan.load(tmp_path / "missing.json")


def test_empty_plan_is_empty():
    assert FaultPlan().empty
    assert not FaultPlan(faults=(FaultSpec(kind="alloc.pinned"),)).empty


def test_random_plans_are_seed_deterministic():
    a = FaultPlan.random(1234, n_gpus=2)
    b = FaultPlan.random(1234, n_gpus=2)
    assert a == b
    assert a.to_json() == b.to_json()
    assert a.seed == 1234
    assert 1 <= len(a.faults) <= 4
    # A different seed gives a different plan (for these particular seeds).
    assert FaultPlan.random(1235, n_gpus=2) != a


def test_random_plan_respects_gates():
    for seed in range(20):
        plan = FaultPlan.random(seed, n_gpus=1, allow_bandwidth=False)
        kinds = {f.kind for f in plan.faults}
        assert FaultKind.GPU_LOST not in kinds      # single GPU: no loss
        assert FaultKind.BANDWIDTH not in kinds
    with pytest.raises(FaultPlanError, match="max_faults"):
        FaultPlan.random(0, max_faults=0)
    with pytest.raises(FaultPlanError, match="horizon_s"):
        FaultPlan.random(0, horizon_s=0)


# ---------------------------------------------------------------------------
# Injector matching
# ---------------------------------------------------------------------------


def test_counter_after_and_times_semantics(env):
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", after=2, times=2),))
    inj = FaultInjector(plan).attach(Machine(env, PLATFORM1))
    hits = [inj.on_transfer(0, "HtoD") is not None for _ in range(6)]
    # ops 1-2 pass ("after"), 3-4 fail ("times"), 5-6 pass (budget spent)
    assert hits == [False, False, True, True, False, False]
    assert inj.fired_total == 2
    assert inj.summary() == {"fired": 2,
                             "by_kind": {"pcie.transient": 2}}


def test_counter_narrowing_by_gpu_and_direction(env):
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", gpu=1, direction="DtoH"),))
    inj = FaultInjector(plan).attach(Machine(env, PLATFORM2, n_gpus=2))
    assert inj.on_transfer(0, "DtoH") is None     # wrong gpu
    assert inj.on_transfer(1, "HtoD") is None     # wrong direction
    assert inj.on_transfer(1, "DtoH") is not None
    assert inj.on_transfer(1, "DtoH") is None     # times=1 spent


def test_alloc_hooks_match_their_kinds(env):
    plan = FaultPlan(faults=(
        FaultSpec(kind="alloc.pinned"),
        FaultSpec(kind="alloc.device", gpu=0),))
    inj = FaultInjector(plan).attach(Machine(env, PLATFORM1))
    assert inj.on_pinned_alloc() is not None
    assert inj.on_pinned_alloc() is None
    assert inj.on_device_alloc(0) is not None
    assert inj.on_device_alloc(0) is None
    assert inj.summary()["by_kind"] == {"alloc.device": 1,
                                        "alloc.pinned": 1}


def test_start_requires_attach(env):
    inj = FaultInjector(FaultPlan())
    with pytest.raises(FaultPlanError, match="attach"):
        inj.start(env)


def test_gpu_loss_fires_at_scheduled_time(env):
    machine = Machine(env, PLATFORM1)
    plan = FaultPlan(faults=(
        FaultSpec(kind="gpu.lost", gpu=0, at_s=0.005),))
    inj = FaultInjector(plan).attach(machine)
    inj.start(env)
    env.run(until=0.004)
    assert not machine.gpus[0].lost
    env.run(until=0.006)
    assert machine.gpus[0].lost
    assert inj.summary()["by_kind"] == {"gpu.lost": 1}


def test_gpu_loss_out_of_range_is_skipped(env):
    machine = Machine(env, PLATFORM1)       # 1 GPU
    plan = FaultPlan(faults=(
        FaultSpec(kind="gpu.lost", gpu=5, at_s=0.001),))
    inj = FaultInjector(plan).attach(machine)
    inj.start(env)
    env.run(until=0.01)
    assert inj.fired_total == 0
    assert not machine.gpus[0].lost


@pytest.mark.parametrize("link", FaultKind.LINKS)
def test_bandwidth_window_restores_capacity(env, link):
    machine = Machine(env, PLATFORM1)
    targets = {"host_bus": machine.host_bus,
               "pcie.htod": machine.pcie["HtoD"],
               "pcie.dtoh": machine.pcie["DtoH"]}
    original = targets[link].capacity
    plan = FaultPlan(faults=(
        FaultSpec(kind="bandwidth.degrade", link=link, at_s=0.001,
                  duration_s=0.002, factor=0.5),))
    inj = FaultInjector(plan).attach(machine)
    inj.start(env)
    env.run(until=0.002)
    assert targets[link].capacity == pytest.approx(original * 0.5)
    env.run(until=0.004)
    assert targets[link].capacity == pytest.approx(original)
    assert inj.summary()["by_kind"] == {"bandwidth.degrade": 1}


def test_empty_plan_schedules_and_matches_nothing(env):
    machine = Machine(env, PLATFORM1)
    inj = FaultInjector(FaultPlan()).attach(machine)
    inj.start(env)
    assert inj.on_transfer(0, "HtoD") is None
    assert inj.on_pinned_alloc() is None
    assert inj.on_device_alloc(0) is None
    assert inj.fired_total == 0
    assert inj.summary() == {"fired": 0, "by_kind": {}}
