"""The engine-equivalence battery: heap vs. calendar-queue scheduler.

The simulator's future-event queue is pluggable
(:data:`repro.sim.engine.SCHEDULERS`): ``"heap"`` is the reference,
``"calendar"`` the timer-wheel alternative.  The contract is that the
choice is *invisible* -- both pop events in the identical
``(when, priority, seq)`` order, so every downstream artifact of a run
is byte-identical regardless of scheduler.  This battery pins that
contract end to end, through the full sorter stack:

* span ids, dependency edges, and timestamps of the trace;
* the streaming-telemetry event log (``repro.events/v1`` JSONL bytes);
* the canonical run report (critical path included);
* the sweep-ledger lines (conformance record included);
* a chaos run under a random :class:`~repro.sim.faults.FaultPlan`
  (fault/retry/degrade timing rides on the event order too).

Runs are deliberately tiny (60k elements) so the whole battery stays
tier-1 material; the cross product still covers all five approaches on
both platforms.
"""

import io

import numpy as np
import pytest

from repro.errors import ReproError
from repro.hetsort import APPROACH_RUNNERS, HeterogeneousSorter
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.obs.diff import canonical_json, run_report
from repro.obs.sinks import JsonlSink
from repro.sim import engine as engine_mod
from repro.sim.faults import FaultPlan

APPROACHES = sorted(APPROACH_RUNNERS)
SCHEDULERS = sorted(engine_mod.SCHEDULERS)

N = 60_000
BATCH = 20_000
PINNED = 5_000


def _run(scheduler, approach, platform, n_gpus=1, faults=None, seed=11):
    """One full sorter run under the given scheduler; returns a dict of
    every byte-stable artifact the battery compares."""
    engine_mod._DEFAULT_SCHEDULER = scheduler
    try:
        data = np.random.default_rng(seed).random(N)
        s = HeterogeneousSorter(platform, n_gpus=n_gpus, batch_size=BATCH,
                                pinned_elements=PINNED)
        buf = io.StringIO()
        try:
            res = s.sort(data, approach=approach, faults=faults,
                         sinks=(JsonlSink(buf),))
        except ReproError as exc:
            buf.write(f"# died: {type(exc).__name__}\n")
            return {"event_log": buf.getvalue(), "died": True}
        spans = tuple((sp.id, sp.category, sp.label, sp.lane,
                       sp.start, sp.end, sp.deps)
                      for sp in res.trace.spans)
        return {
            "event_log": buf.getvalue(),
            "spans": spans,
            "elapsed": res.elapsed,
            "report": canonical_json(run_report(res, label="battery")),
            "output": res.output,
            "died": False,
        }
    finally:
        engine_mod._DEFAULT_SCHEDULER = "heap"


@pytest.mark.battery
@pytest.mark.parametrize("platform", [PLATFORM1, PLATFORM2],
                         ids=lambda p: p.name)
@pytest.mark.parametrize("approach", APPROACHES)
def test_schedulers_byte_identical(approach, platform):
    """Every approach on every platform: heap and calendar runs agree on
    spans (ids, deps, times), event-log bytes, and the run report."""
    ref = _run("heap", approach, platform)
    alt = _run("calendar", approach, platform)
    assert not ref["died"] and not alt["died"]
    assert ref["spans"] == alt["spans"]
    assert ref["elapsed"] == alt["elapsed"]
    assert ref["event_log"] == alt["event_log"]
    assert ref["report"] == alt["report"]
    np.testing.assert_array_equal(ref["output"], alt["output"])


@pytest.mark.battery
def test_explicit_scheduler_kwarg_matches_reference_order():
    """Environment(scheduler=...) at the engine level: a program mixing
    repeated timeouts with timestamp collisions fires in the identical
    order (tag, time) under both schedulers."""

    def run(scheduler):
        env = engine_mod.Environment(scheduler=scheduler)
        assert env.scheduler == scheduler
        order = []

        def prog(tag, delay):
            for _ in range(3):
                yield env.timeout(delay)
                order.append((tag, env.now))

        for i in range(8):
            env.process(prog(i, 0.5 + (i % 3) * 0.25), name=f"p{i}")
        env.run()
        assert order == sorted(order, key=lambda t: t[1])  # time-ordered
        return order

    assert run("heap") == run("calendar")


@pytest.mark.battery
def test_chaos_run_byte_identical_across_schedulers():
    """A random FaultPlan exercises degraded-bandwidth windows, retries
    and GPU loss; the event log must still not depend on the scheduler."""
    plan = FaultPlan.random(7, n_gpus=2)
    logs = {sched: _run(sched, "pipedata", PLATFORM2, n_gpus=2,
                        faults=plan, seed=7)["event_log"]
            for sched in SCHEDULERS}
    assert logs["heap"] == logs["calendar"]
    assert logs["heap"]


@pytest.mark.battery
def test_sweep_ledger_bytes_identical_across_schedulers():
    """The tiny sweep grid writes byte-identical ledger JSONL under both
    schedulers (conformance model derivation included)."""
    from repro.obs.sweep import run_sweep, sweep_points

    ledgers = {}
    for sched in SCHEDULERS:
        engine_mod._DEFAULT_SCHEDULER = sched
        try:
            records = run_sweep(sweep_points("tiny"), model_n=4_000_000)
        finally:
            engine_mod._DEFAULT_SCHEDULER = "heap"
        ledgers[sched] = "\n".join(canonical_json(r, indent=None)
                                   for r in records)
    assert ledgers["heap"] == ledgers["calendar"]


def test_unknown_scheduler_rejected():
    with pytest.raises(engine_mod.SimulationError, match="unknown scheduler"):
        engine_mod.Environment(scheduler="fifo")
