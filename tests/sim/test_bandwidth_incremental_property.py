"""Hypothesis battery: the incremental water-filling allocator is
bit-for-bit the from-scratch reference.

:meth:`FlowNetwork._update` recomputes only the link-connected
components touched by a join/leave/``set_capacity``;
:meth:`FlowNetwork._recompute_full` refills *everything*.  Because the
fill is a pure per-component function of (flows in insertion order,
link capacities), the two must agree to the last ulp at every instant
of any operation sequence -- including mid-run capacity degradation of
the kind :mod:`repro.sim.faults` injects.  Exact ``==`` on every float
below is deliberate: any tolerance would hide an order-dependence bug.

The capacity-flap regression at the bottom pins the companion fix: a
flow's ``remaining`` is derived from one ``progressed`` accumulator, so
pathological reallocation storms cannot drift bytes negative or strand
an almost-done flow.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bandwidth import FlowNetwork
from repro.sim.engine import Environment

# One operation per element: (kind, nbytes/factor, link subset, weight,
# flow cap or None, wait dt).  Subsets over 3 links give isolated,
# shared, and bridging components.
_SUBSETS = [(0,), (1,), (2,), (0, 1), (1, 2), (0, 2), (0, 1, 2)]

op_lists = st.lists(
    st.tuples(
        st.sampled_from(["join", "setcap", "wait"]),
        st.floats(min_value=0.05, max_value=20.0),
        st.sampled_from(_SUBSETS),
        st.floats(min_value=1.0, max_value=2.5),
        st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0)),
        st.floats(min_value=0.0, max_value=2.0),
    ),
    min_size=1, max_size=16)


def _snapshot(net):
    return ([f.rate for f in net._flows],
            [l._current_rate for l in net._links])


def _assert_incremental_is_full(net):
    """The ulp-exact check: refilling everything from scratch must not
    move a single float the incremental path produced."""
    before = _snapshot(net)
    net._recompute_full()
    after = _snapshot(net)
    assert before == after


@given(ops=op_lists,
       caps=st.tuples(*[st.floats(min_value=2.0, max_value=200.0)] * 3))
@settings(max_examples=80, deadline=None)
def test_incremental_update_equals_full_recompute(ops, caps):
    env = Environment()
    net = FlowNetwork(env)
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(caps)]

    def driver():
        pending = []
        for kind, size, subset, weight, cap, dt in ops:
            if kind == "join":
                kw = {} if cap is None else {"cap": cap}
                pending.append(net.transfer(
                    size * 10.0,
                    [(links[i], weight) for i in subset], **kw))
            elif kind == "setcap":
                # Degraded-bandwidth window: scale one link by a factor
                # in [0.05, 20] (faults degrade, repairs restore).
                link = links[subset[0]]
                net.set_capacity(link, max(link.capacity * size * 0.1,
                                           1e-3))
            _assert_incremental_is_full(net)
            if dt > 0.0:
                # Let flows progress (and possibly leave) at the
                # current allocation before the next disturbance.
                yield env.timeout(dt)
                _assert_incremental_is_full(net)
        # Drain: restore healthy capacities (a degraded link can leave
        # horizons of ~1e5 s) and wait out every completion.
        for link, cap0 in zip(links, caps):
            net.set_capacity(link, cap0)
            _assert_incremental_is_full(net)
        for ev in pending:
            if ev.callbacks is not None:   # not yet triggered
                yield ev
            _assert_incremental_is_full(net)

    proc = env.process(driver(), name="driver")
    env.run(proc)
    assert net.active_flows == 0


@given(seed=st.integers(0, 2 ** 16))
@settings(max_examples=30, deadline=None)
def test_leave_events_keep_equality(seed):
    """Completions (leaves) in mixed components: after every wakeup the
    incremental state still equals the reference."""
    import random
    rng = random.Random(seed)
    env = Environment()
    net = FlowNetwork(env)
    links = [net.add_link(f"l{i}", rng.uniform(5.0, 50.0))
             for i in range(3)]
    done = []

    def flow(i):
        yield env.timeout(rng.uniform(0.0, 1.0))
        subset = _SUBSETS[rng.randrange(len(_SUBSETS))]
        yield net.transfer(rng.uniform(1.0, 30.0),
                           [links[j] for j in subset])
        _assert_incremental_is_full(net)
        done.append(i)

    n = rng.randrange(2, 9)
    for i in range(n):
        env.process(flow(i), name=f"f{i}")
    env.run()
    assert sorted(done) == list(range(n))


def test_capacity_flap_rounding_regression():
    """Pathological capacity-flap storm: one almost-done flow survives
    hundreds of reallocations across twelve orders of magnitude without
    byte drift.

    Every flap advances the flow and re-derives ``remaining`` from the
    single ``progressed`` accumulator; the invariant below (and the
    exact completion) is what the old per-flap ``remaining -= chunk``
    arithmetic could not hold."""
    env = Environment()
    net = FlowNetwork(env)
    link = net.add_link("flappy", 1e12)
    nbytes = 1e9

    def flapper():
        ev = net.transfer(nbytes, [link])
        flow = net._flows[0]
        for k in range(400):
            yield env.timeout(1e-7)
            net.set_capacity(link, 1e12 if k % 2 else 1e-3 * (1 + k))
            # remaining is *derived*, never independently decremented.
            assert flow.remaining == max(0.0, nbytes - flow.progressed)
            assert flow.remaining >= 0.0
        net.set_capacity(link, 1e12)
        yield ev
        assert flow.progressed == pytest.approx(nbytes, abs=1e-3)

    proc = env.process(flapper(), name="flapper")
    env.run(proc)
    assert net.active_flows == 0
    assert net.completed_flows == 1


def test_capacity_flap_deterministic():
    """The same flap storm twice: bit-identical completion times."""

    def run():
        env = Environment()
        net = FlowNetwork(env)
        link = net.add_link("flappy", 7.5)

        def flapper():
            ev = net.transfer(100.0, [link])
            for k in range(50):
                yield env.timeout(0.01)
                net.set_capacity(link, 7.5 if k % 2 else 0.125)
            net.set_capacity(link, 7.5)
            yield ev

        proc = env.process(flapper(), name="flapper")
        env.run(proc)
        return env.now

    assert run() == run()
