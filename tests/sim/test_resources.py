"""Tests for Resource (FIFO counting semaphore) and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Resource, Store

# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def run_tasks(env, cores, specs):
    """specs: (name, units, duration); returns [(event, name, time)]."""
    log = []

    def task(env, name, units, dur):
        yield cores.request(units)
        log.append(("start", name, env.now))
        yield env.timeout(dur)
        cores.release(units)
        log.append(("end", name, env.now))

    for name, units, dur in specs:
        env.process(task(env, name, units, dur))
    env.run()
    return log


def test_capacity_enforced(env):
    cores = Resource(env, 2)
    log = run_tasks(env, cores, [("a", 1, 1.0), ("b", 1, 1.0),
                                 ("c", 1, 1.0)])
    starts = {name: t for kind, name, t in log if kind == "start"}
    assert starts == {"a": 0.0, "b": 0.0, "c": 1.0}


def test_multi_unit_requests(env):
    cores = Resource(env, 4)
    log = run_tasks(env, cores, [("big", 3, 2.0), ("small", 2, 1.0)])
    starts = {name: t for kind, name, t in log if kind == "start"}
    # small needs 2 units but only 1 is free until big releases.
    assert starts == {"big": 0.0, "small": 2.0}


def test_strict_fifo_no_bypass(env):
    """A small request queued behind a large one must NOT jump the queue
    even if it would fit."""
    cores = Resource(env, 4)
    log = run_tasks(env, cores, [("hold", 3, 2.0), ("wide", 4, 1.0),
                                 ("tiny", 1, 1.0)])
    starts = {name: t for kind, name, t in log if kind == "start"}
    assert starts["hold"] == 0.0
    assert starts["wide"] == 2.0
    assert starts["tiny"] == 3.0  # waits behind wide despite free unit


def test_counts_track_usage(env):
    cores = Resource(env, 8)

    def task(env):
        yield cores.request(5)
        assert cores.in_use == 5
        assert cores.available == 3
        yield env.timeout(1.0)
        cores.release(5)

    env.process(task(env))
    env.run()
    assert cores.in_use == 0


def test_over_release_rejected(env):
    cores = Resource(env, 2)
    with pytest.raises(SimulationError):
        cores.release(1)


def test_request_more_than_capacity_rejected(env):
    cores = Resource(env, 2)
    with pytest.raises(SimulationError):
        cores.request(3)


def test_invalid_capacity_rejected(env):
    with pytest.raises(SimulationError):
        Resource(env, 0)


def test_busy_unit_seconds(env):
    cores = Resource(env, 4)
    run_tasks(env, cores, [("a", 2, 3.0)])
    assert cores.busy_unit_seconds() == pytest.approx(6.0)


def test_queue_length(env):
    cores = Resource(env, 1)

    def holder(env):
        yield cores.request(1)
        yield env.timeout(1.0)
        cores.release(1)

    def waiter(env):
        yield cores.request(1)
        cores.release(1)

    env.process(holder(env))
    env.process(waiter(env))
    env.process(waiter(env))
    env.run(until=0.5)
    assert cores.queue_length == 2
    env.run()
    assert cores.queue_length == 0


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get(env):
    store = Store(env)
    store.put("x")
    got = []

    def getter(env, store):
        item = yield store.get()
        got.append(item)

    env.process(getter(env, store))
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put(env):
    store = Store(env)
    got = []

    def getter(env, store):
        item = yield store.get()
        got.append((env.now, item))

    def putter(env, store):
        yield env.timeout(2.0)
        store.put("late")

    env.process(getter(env, store))
    env.process(putter(env, store))
    env.run()
    assert got == [(2.0, "late")]


def test_store_fifo_order_of_items_and_getters(env):
    store = Store(env)
    got = []

    def getter(env, store, name):
        item = yield store.get()
        got.append((name, item))

    env.process(getter(env, store, "g1"))
    env.process(getter(env, store, "g2"))

    def putter(env, store):
        yield env.timeout(1.0)
        store.put("first")
        store.put("second")

    env.process(putter(env, store))
    env.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_store_try_get(env):
    store = Store(env)
    assert store.try_get() == (False, None)
    store.put(1)
    assert store.try_get() == (True, 1)
    assert len(store) == 0
