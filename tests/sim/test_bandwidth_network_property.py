"""Hypothesis property tests for multi-link, weighted flow networks --
the configuration the Machine actually uses (PCIe link + host bus with
pageable amplification)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bandwidth import FlowNetwork
from repro.sim.engine import Environment

flow_specs = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=1e4),          # nbytes
        st.sampled_from([(0,), (1,), (0, 1)]),            # link subset
        st.floats(min_value=1.0, max_value=2.0),          # weight on link
        st.floats(min_value=0.0, max_value=3.0),          # start delay
    ),
    min_size=1, max_size=10)


@given(flows=flow_specs,
       cap0=st.floats(min_value=5.0, max_value=500.0),
       cap1=st.floats(min_value=5.0, max_value=500.0))
@settings(max_examples=60, deadline=None)
def test_weighted_multilink_conservation(flows, cap0, cap1):
    """All flows complete; per-link weighted volume respects capacity."""
    env = Environment()
    net = FlowNetwork(env)
    links = [net.add_link("l0", cap0), net.add_link("l1", cap1)]
    finished = []

    def p(nbytes, subset, weight, delay):
        yield env.timeout(delay)
        t0 = env.now
        entries = [(links[i], weight) for i in subset]
        yield net.transfer(nbytes, entries)
        finished.append((nbytes, subset, weight, t0, env.now))

    for spec in flows:
        env.process(p(*spec))
    env.run()

    assert len(finished) == len(flows)
    assert net.active_flows == 0
    # Per-link: the weighted bytes carried cannot exceed capacity x the
    # busy window.
    for li, cap in ((0, cap0), (1, cap1)):
        volume = sum(nb * w for nb, subset, w, _, _ in finished
                     if li in subset)
        if volume == 0:
            continue
        window = (max(t1 for nb, s, w, t0, t1 in finished if li in s)
                  - min(t0 for nb, s, w, t0, t1 in finished if li in s))
        assert window * cap >= volume * (1 - 1e-6)
    # Per-flow: no flow finished faster than its bottleneck allows.
    for nbytes, subset, weight, t0, t1 in finished:
        best_rate = min((links[i].capacity / weight) for i in subset)
        assert t1 - t0 >= nbytes / best_rate - 1e-6


@given(n_flows=st.integers(1, 8),
       weight=st.floats(min_value=1.0, max_value=3.0))
@settings(max_examples=40, deadline=None)
def test_weight_scales_effective_capacity(n_flows, weight):
    """n identical weight-w flows on one link of capacity C finish in
    exactly n * bytes * w / C."""
    env = Environment()
    net = FlowNetwork(env)
    link = net.add_link("l", 100.0)
    ends = []

    def p():
        yield net.transfer(50.0, [(link, weight)])
        ends.append(env.now)

    for _ in range(n_flows):
        env.process(p())
    env.run()
    assert ends[-1] == pytest.approx(n_flows * 50.0 * weight / 100.0)


def test_completed_flow_counter():
    env = Environment()
    net = FlowNetwork(env)
    link = net.add_link("l", 10.0)

    def p():
        yield net.transfer(5.0, [link])
        yield net.transfer(0.0, [link])   # zero-byte: immediate

    proc = env.process(p())
    env.run(proc)
    assert net.completed_flows == 2
