"""Hypothesis battery: deterministic FIFO tie-breaking across schedulers.

The engine's total event order is ``(when, priority, seq)`` -- among
events landing at the same instant with the same priority, insertion
order wins.  Both future-queue implementations (binary heap and
calendar queue) must realise that order exactly, through collisions,
URGENT/NORMAL mixes, nested same-instant scheduling, and lazy
cancellation.  Delays are drawn from a coarse quantised grid precisely
to force many timestamp collisions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import NORMAL, URGENT, Environment
from repro.sim.events import Event

# A schedule: each entry seeds one event at a quantised delay.  ``spawn``
# asks the event's callback to schedule a child at a further quantised
# delay (0 = same instant); ``cancel_prev`` lazily cancels the
# previously seeded event, exercising queue skip-on-pop paths.
entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),      # delay / 0.25
        st.sampled_from([URGENT, NORMAL]),           # priority
        st.integers(min_value=0, max_value=3),       # spawn depth
        st.booleans(),                               # cancel_prev
    ),
    min_size=1, max_size=24)


def _trigger(env, when, priority):
    """A pre-triggered bare event (the wakeup idiom of the bandwidth
    layer) scheduled ``when`` from now."""
    ev = Event(env)
    ev._ok = True
    ev._value = None
    env.schedule(ev, delay=when, priority=priority)
    return ev


def _run(scheduler, plan):
    env = Environment(scheduler=scheduler)
    fired = []

    def make_cb(tag, depth, priority):
        def cb(event):
            fired.append((tag, env.now))
            if depth > 0:
                child = _trigger(env, 0.25 * (depth % 2), priority)
                child.callbacks.append(
                    make_cb(f"{tag}.c{depth}", depth - 1, priority))
        return cb

    prev = None
    for i, (q, priority, spawn, cancel_prev) in enumerate(plan):
        ev = _trigger(env, 0.25 * q, priority)
        ev.callbacks.append(make_cb(f"e{i}", spawn, priority))
        if cancel_prev and prev is not None and prev.callbacks is not None:
            env.unschedule(prev)
        prev = ev
    env.run()
    return fired, env.processed_events


@given(plan=entries)
@settings(max_examples=120, deadline=None)
def test_firing_order_identical_across_schedulers(plan):
    heap, n_heap = _run("heap", plan)
    cal, n_cal = _run("calendar", plan)
    assert heap == cal
    assert n_heap == n_cal
    # Sanity: the order really is time-sorted.
    times = [t for _, t in heap]
    assert times == sorted(times)


@given(plan=entries)
@settings(max_examples=60, deadline=None)
def test_same_instant_fifo_is_insertion_order(plan):
    """Among root events with equal (when, priority), firing order is
    exactly seeding order -- on both schedulers."""
    for scheduler in ("heap", "calendar"):
        fired, _ = _run(scheduler, plan)
        root = [tag for tag, _ in fired if "." not in tag]
        # Reconstruct the expected order: cancelled events never fire;
        # survivors sort by (when, priority, seed index).
        alive = {}
        prev_i = None
        for i, (q, priority, spawn, cancel_prev) in enumerate(plan):
            if cancel_prev and prev_i is not None:
                alive.pop(prev_i, None)
            alive[i] = (0.25 * q, priority)
            prev_i = i
        expected = [f"e{i}" for i, _ in
                    sorted(alive.items(), key=lambda kv: (kv[1], kv[0]))]
        assert root == expected


def test_cancelled_events_never_fire_and_queue_drains():
    for scheduler in ("heap", "calendar"):
        env = Environment(scheduler=scheduler)
        fired = []
        keep = _trigger(env, 1.0, NORMAL)
        keep.callbacks.append(lambda e: fired.append("keep"))
        drop = _trigger(env, 1.0, NORMAL)
        drop.callbacks.append(lambda e: fired.append("drop"))
        env.unschedule(drop)
        env.run()
        assert fired == ["keep"]
        assert env.peek() == float("inf")
