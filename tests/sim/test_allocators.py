"""Hypothesis battery for the bandwidth-allocator family.

Pins the contracts the multi-tenant service relies on:

- conservation: under every policy mix, no link carries more than its
  capacity and no flow runs a negative rate;
- incremental == full: the PR-6 water-filling equivalence (incremental
  component refill vs from-scratch recompute, exact ``==`` on every
  float) extends to weighted/layered policies;
- FairShare bit-identity: installing an explicit :class:`FairShare`
  policy is indistinguishable -- snapshot for snapshot -- from the
  historical no-policy network on arbitrary operation sequences;
- work conservation (fair-share / max-min): an oversubscribed link is
  completely used;
- strict-priority starvation ordering: a saturating higher class leaves
  a lower class at *exactly* zero, and leftovers (a capped high class)
  flow down;
- fixed-levels floors and ceilings: a backlogged class receives its
  level fraction exactly -- no more (no spillover), no less (the floor).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.allocators import (ALLOCATORS, FairShare, FixedLevels,
                                  MaxMinFair, QosTag, StrictPriority,
                                  make_allocator)
from repro.sim.bandwidth import FlowNetwork
from repro.sim.engine import Environment

from tests.sim.test_bandwidth_incremental_property import (
    _SUBSETS, _assert_incremental_is_full, _snapshot, op_lists)

_POLICIES = ["none", "fair-share", "max-min", "fixed-levels",
             "strict-priority"]
# Levels sum to 0.9 so the residual class (any unmapped priority) keeps a
# positive fraction -- a lone flow in a zero-fraction class is a genuine
# deadlock and raises (pinned separately below).
_LEVELS = {2: 0.45, 1: 0.3, 0: 0.15}


def _make_policy(name):
    if name == "none":
        return None
    return make_allocator(name, levels=_LEVELS)


def _net(caps, policies=None):
    env = Environment()
    net = FlowNetwork(env)
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(caps)]
    for link, pol in zip(links, policies or []):
        net.set_policy(link, _make_policy(pol))
    return env, net, links


# -- registry ----------------------------------------------------------------

def test_registry_names():
    assert sorted(ALLOCATORS) == ["fair-share", "fixed-levels",
                                  "max-min", "strict-priority"]
    assert isinstance(make_allocator("max-min"), MaxMinFair)
    assert isinstance(make_allocator("fixed-levels", levels={0: 0.5}),
                      FixedLevels)


def test_make_allocator_rejects_unknown():
    with pytest.raises(SimulationError):
        make_allocator("round-robin")


def test_fixed_levels_validation():
    with pytest.raises(SimulationError):
        make_allocator("fixed-levels")          # level map required
    with pytest.raises(SimulationError):
        FixedLevels({})
    with pytest.raises(SimulationError):
        FixedLevels({0: 0.0})
    with pytest.raises(SimulationError):
        FixedLevels({0: 0.7, 1: 0.7})           # sums past 1


def test_qos_tag_defaults():
    tag = QosTag()
    assert (tag.tenant, tag.priority, tag.share) == (None, 0, 1.0)


# -- property: conservation under every policy mix ---------------------------

flow_specs = st.lists(
    st.tuples(
        st.sampled_from(_SUBSETS),                       # link subset
        st.floats(min_value=0.25, max_value=4.0),        # share
        st.integers(min_value=0, max_value=3),           # priority
        st.one_of(st.none(),
                  st.floats(min_value=0.5, max_value=30.0)),  # flow cap
    ),
    min_size=1, max_size=10)


@given(specs=flow_specs,
       policies=st.tuples(*[st.sampled_from(_POLICIES)] * 3),
       caps=st.tuples(*[st.floats(min_value=2.0, max_value=100.0)] * 3))
@settings(max_examples=120, deadline=None)
def test_conservation_under_every_policy_mix(specs, policies, caps):
    _env, net, links = _net(caps, policies)
    for subset, share, priority, cap in specs:
        kw = {} if cap is None else {"cap": cap}
        net.transfer(1e6, [links[i] for i in subset],
                     share=share, priority=priority, **kw)
    loads = {l: 0.0 for l in links}
    for f in net._flows:
        assert f.rate >= 0.0
        if f.cap is not math.inf:
            assert f.rate <= f.cap * (1 + 1e-9)
        for l, w in f.links:
            loads[l] += f.rate * w
    for l in links:
        assert loads[l] <= l.capacity * (1 + 1e-9)


# -- property: incremental == full with QoS policies -------------------------

qos_ops = st.lists(
    st.tuples(
        st.sampled_from(["join", "setcap", "wait"]),
        st.floats(min_value=0.05, max_value=20.0),
        st.sampled_from(_SUBSETS),
        st.floats(min_value=0.25, max_value=4.0),        # share
        st.integers(min_value=0, max_value=3),           # priority
        st.floats(min_value=0.0, max_value=2.0),         # wait dt
    ),
    min_size=1, max_size=14)


@given(ops=qos_ops,
       policies=st.tuples(*[st.sampled_from(_POLICIES)] * 3),
       caps=st.tuples(*[st.floats(min_value=2.0, max_value=200.0)] * 3))
@settings(max_examples=80, deadline=None)
def test_incremental_equals_full_under_policies(ops, policies, caps):
    env, net, links = _net(caps, policies)

    def driver():
        pending = []
        for kind, size, subset, share, priority, dt in ops:
            if kind == "join":
                pending.append(net.transfer(
                    size * 10.0, [links[i] for i in subset],
                    share=share, priority=priority))
            elif kind == "setcap":
                link = links[subset[0]]
                net.set_capacity(link, max(link.capacity * size * 0.1,
                                           1e-3))
            _assert_incremental_is_full(net)
            if dt > 0.0:
                yield env.timeout(dt)
                _assert_incremental_is_full(net)
        for link, cap0 in zip(links, caps):
            net.set_capacity(link, cap0)
            _assert_incremental_is_full(net)
        for ev in pending:
            if ev.callbacks is not None:
                yield ev
            _assert_incremental_is_full(net)

    proc = env.process(driver(), name="driver")
    env.run(proc)
    assert net.active_flows == 0


# -- property: FairShare is bit-identical to no policy at all ----------------

@given(ops=op_lists,
       caps=st.tuples(*[st.floats(min_value=2.0, max_value=200.0)] * 3))
@settings(max_examples=60, deadline=None)
def test_fair_share_policy_is_bit_identical(ops, caps):
    def run(explicit: bool):
        env, net, links = _net(
            caps, ["fair-share"] * 3 if explicit else None)
        snaps = []

        def driver():
            pending = []
            for kind, size, subset, weight, cap, dt in ops:
                if kind == "join":
                    kw = {} if cap is None else {"cap": cap}
                    pending.append(net.transfer(
                        size * 10.0,
                        [(links[i], weight) for i in subset], **kw))
                elif kind == "setcap":
                    link = links[subset[0]]
                    net.set_capacity(
                        link, max(link.capacity * size * 0.1, 1e-3))
                snaps.append((env.now, _snapshot(net)))
                if dt > 0.0:
                    yield env.timeout(dt)
            for link, cap0 in zip(links, caps):
                net.set_capacity(link, cap0)
            for ev in pending:
                if ev.callbacks is not None:
                    yield ev
                snaps.append((env.now, _snapshot(net)))

        proc = env.process(driver(), name="driver")
        env.run(proc)
        snaps.append((env.now, _snapshot(net)))
        return snaps

    assert run(explicit=True) == run(explicit=False)


# -- work conservation -------------------------------------------------------

@pytest.mark.parametrize("policy", ["fair-share", "max-min"])
def test_oversubscribed_link_fully_used(policy):
    _env, net, links = _net([10.0], [policy])
    for share in (1.0, 2.0, 0.5):
        net.transfer(1e6, links, share=share)
    assert sum(f.rate for f in net._flows) == pytest.approx(10.0,
                                                            rel=1e-9)


def test_max_min_weighted_split():
    _env, net, links = _net([9.0], ["max-min"])
    net.transfer(1e6, links, share=2.0)
    net.transfer(1e6, links, share=1.0)
    hi, lo = net._flows
    assert hi.rate == pytest.approx(6.0, rel=1e-9)
    assert lo.rate == pytest.approx(3.0, rel=1e-9)


def test_fair_share_ignores_shares():
    _env, net, links = _net([9.0], ["fair-share"])
    net.transfer(1e6, links, share=2.0)
    net.transfer(1e6, links, share=1.0)
    assert [f.rate for f in net._flows] == [4.5, 4.5]


# -- strict priority ---------------------------------------------------------

def test_strict_priority_starves_lower_class_exactly():
    _env, net, links = _net([10.0], ["strict-priority"])
    net.transfer(1e6, links, priority=2)
    net.transfer(1e6, links, priority=1)
    net.transfer(1e6, links, priority=0)
    high, mid, low = net._flows
    assert high.rate == pytest.approx(10.0, rel=1e-9)
    assert mid.rate == 0.0          # exact: frozen before any round
    assert low.rate == 0.0


def test_strict_priority_leftovers_flow_down():
    _env, net, links = _net([10.0], ["strict-priority"])
    net.transfer(1e6, links, priority=2, cap=4.0)
    net.transfer(1e6, links, priority=0)
    net.transfer(1e6, links, priority=0)
    high, lo1, lo2 = net._flows
    assert high.rate == 4.0         # snap-to-cap is exact
    assert lo1.rate == pytest.approx(3.0, rel=1e-9)
    assert lo2.rate == pytest.approx(3.0, rel=1e-9)


@given(n_high=st.integers(1, 4), n_low=st.integers(1, 4),
       cap=st.floats(min_value=1.0, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_strict_priority_starvation_property(n_high, n_low, cap):
    """Any number of uncapped higher-class flows saturates the link;
    every lower-class flow is pinned at exactly 0.0."""
    _env, net, links = _net([cap], ["strict-priority"])
    for _ in range(n_high):
        net.transfer(1e9, links, priority=1)
    for _ in range(n_low):
        net.transfer(1e9, links, priority=0)
    rates = [f.rate for f in net._flows]
    assert sum(rates[:n_high]) == pytest.approx(cap, rel=1e-9)
    assert rates[n_high:] == [0.0] * n_low


# -- fixed levels ------------------------------------------------------------

def test_fixed_levels_floors_and_ceilings():
    _env, net, links = _net([100.0])
    net.set_policy(links[0], FixedLevels({2: 0.5, 0: 0.25}))
    net.transfer(1e9, links, priority=2)
    net.transfer(1e9, links, priority=0)
    net.transfer(1e9, links, priority=7)    # unmapped: residual class
    hi, lo, other = net._flows
    assert hi.rate == pytest.approx(50.0, rel=1e-9)
    assert lo.rate == pytest.approx(25.0, rel=1e-9)
    assert other.rate == pytest.approx(25.0, rel=1e-9)


def test_fixed_levels_no_spillover():
    """The confinement that motivates the adaptive controller: with
    every other class idle, a backlogged class still cannot exceed its
    level."""
    _env, net, links = _net([100.0])
    net.set_policy(links[0], FixedLevels({2: 0.5, 0: 0.25}))
    net.transfer(1e9, links, priority=0)
    (only,) = net._flows
    assert only.rate == pytest.approx(25.0, rel=1e-9)
    assert only.rate < 26.0                 # nowhere near the idle 75%


@given(fracs=st.lists(st.floats(min_value=0.05, max_value=0.4),
                      min_size=2, max_size=4),
       cap=st.floats(min_value=10.0, max_value=1000.0))
@settings(max_examples=60, deadline=None)
def test_fixed_levels_floor_property(fracs, cap):
    """Every mapped, backlogged class receives exactly level * capacity
    (floor AND ceiling) when all classes are backlogged."""
    total = sum(fracs)
    if total > 1.0:
        fracs = [f / total for f in fracs]
    levels = {p: f for p, f in enumerate(fracs)}
    _env, net, links = _net([cap])
    net.set_policy(links[0], FixedLevels(levels))
    for p in levels:
        net.transfer(1e12, links, priority=p)
    for f in net._flows:
        assert f.rate == pytest.approx(levels[f.priority] * cap,
                                       rel=1e-6)


def test_fixed_levels_zero_fraction_class_deadlocks_loudly():
    """A lone flow whose class has no fraction (levels sum to 1, class
    unmapped) can never progress; the network refuses to hang and raises
    instead."""
    _env, net, links = _net([10.0])
    net.set_policy(links[0], FixedLevels({1: 0.6, 0: 0.4}))
    with pytest.raises(SimulationError):
        net.transfer(1e6, links, priority=7)


def test_fixed_levels_controller_rewrite_takes_effect():
    """Rewriting ``levels`` in place + ``reallocate()`` (the adaptive
    controller's move) re-rates in-flight flows immediately."""
    env, net, links = _net([100.0])
    pol = FixedLevels({1: 0.5, 0: 0.5})
    net.set_policy(links[0], pol)

    def driver():
        net.transfer(1e9, links, priority=1)
        (f,) = net._flows
        assert f.rate == pytest.approx(50.0, rel=1e-9)
        yield env.timeout(0.1)
        pol.levels.clear()
        pol.levels.update({1: 0.95, 0: 0.05})
        net.reallocate()
        assert f.rate == pytest.approx(95.0, rel=1e-9)

    env.run(env.process(driver(), name="driver"))
