"""Fig. 4: CPU sorting scalability on PLATFORM1.

(a) response time vs. threads (1-16) for the GNU parallel sort at four
input sizes, with TBB, std::sort and std::qsort for comparison;
(b) speedup vs. threads.

Paper anchors: speedups range from 3.17x (n = 1e5) to 10.12x (n = 1e9)
at 16 threads; qsort is ~2x slower than std::sort; TBB loses to GNU at
large n; GNU at 1 thread ~= std::sort.
"""

import pytest

from repro.cpu import get_library
from repro.hw import PLATFORM1
from repro.reporting import FigureSeries, render_table

THREADS = [1, 2, 4, 8, 16]
SIZES = [10 ** 5, 10 ** 7, 10 ** 8, 10 ** 9]


def sweep():
    gnu = get_library("gnu")
    series = {}
    for n in SIZES:
        s = FigureSeries(f"GNU n={n:.0e}")
        for t in THREADS:
            s.add(t, gnu.seconds(PLATFORM1, n, t))
        series[n] = s
    return series


def test_fig4a_response_time(report, benchmark):
    series = sweep()
    tbb = get_library("tbb")
    std = get_library("std")
    qsort = get_library("qsort")
    rows = []
    for t in THREADS:
        rows.append([t] + [f"{series[n].at(t):.4g}" for n in SIZES]
                    + [f"{tbb.seconds(PLATFORM1, 10 ** 9, t):.4g}"])
    rows.append(["std::sort"] + [f"{std.seconds(PLATFORM1, n):.4g}"
                                 for n in SIZES] + ["-"])
    rows.append(["std::qsort"] + [f"{qsort.seconds(PLATFORM1, n):.4g}"
                                  for n in SIZES] + ["-"])
    report(render_table(
        ["threads"] + [f"GNU n={n:.0e}" for n in SIZES] + ["TBB n=1e9"],
        rows,
        title="Fig. 4a: CPU sort response time [s] vs threads "
              "(PLATFORM1)"))

    # Shape assertions.  Large inputs improve monotonically with threads;
    # at n = 1e5 the per-thread spawn overhead catches up near 16 threads
    # (the flattening visible in Fig. 4a's lowest curve).
    for n in SIZES:
        ys = series[n].y
        if n >= 10 ** 7:
            assert ys == sorted(ys, reverse=True)
        else:
            assert min(ys) < ys[0]          # threading still pays off
            assert ys[-1] < 2 * min(ys)     # ...and never blows up
    # qsort ~ 2x std::sort.
    assert qsort.seconds(PLATFORM1, 10 ** 8) / \
        std.seconds(PLATFORM1, 10 ** 8) == pytest.approx(2.0, rel=0.01)
    # TBB slower than GNU at n = 1e9 with all threads.
    assert tbb.seconds(PLATFORM1, 10 ** 9, 16) > series[10 ** 9].at(16)

    benchmark.pedantic(sweep, rounds=1, iterations=1)


def test_fig4b_speedup(report, benchmark):
    series = sweep()
    rows = []
    speedup = {}
    for n in SIZES:
        t1 = series[n].at(1)
        speedup[n] = [t1 / series[n].at(t) for t in THREADS]
    for i, t in enumerate(THREADS):
        rows.append([t] + [f"{speedup[n][i]:.2f}" for n in SIZES]
                    + [t])
    report(render_table(
        ["threads"] + [f"n={n:.0e}" for n in SIZES] + ["perfect"],
        rows, title="Fig. 4b: GNU parallel sort speedup (PLATFORM1)"))

    # Paper: 3.17x at n=1e5, 10.12x at n=1e9 with 16 threads.
    assert speedup[10 ** 5][-1] == pytest.approx(3.17, rel=0.10)
    assert speedup[10 ** 9][-1] == pytest.approx(10.12, rel=0.05)
    # Larger inputs scale better.
    at16 = [speedup[n][-1] for n in SIZES]
    assert at16 == sorted(at16)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
