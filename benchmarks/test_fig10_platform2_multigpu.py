"""Fig. 10: response time vs. n on PLATFORM2 with 1 and 2 GPUs.

b_s = 3.5e8, n in multiples of b_s (1.4e9 .. 4.9e9).  Anchors:

* two GPUs outperform every single-GPU configuration;
* fastest (PIPEMERGE+PARMEMCPY, 2 GPUs) is ~1.89x / ~2.02x over the
  20-thread CPU reference at the smallest / largest n;
* the spread between approaches shrinks with 2 GPUs (shared PCIe,
  Sec. IV-F Experiment 2).
"""

import pytest

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hw import PLATFORM2
from repro.reporting import FigureSeries, render_table
from repro.workloads import dataset_gib

BS = int(3.5e8)
SIZES = [4 * BS, 8 * BS, 11 * BS, 14 * BS]   # 1.4e9 .. 4.9e9
CONFIGS = [
    ("BLineMulti", "blinemulti", {}),
    ("PipeData", "pipedata", {}),
    ("PipeMerge", "pipemerge", {}),
    ("PM+ParMemCpy", "pipemerge", {"memcpy_threads": 8}),
]


def sweep():
    series = {}
    for ng in (1, 2):
        for name, ap, kw in CONFIGS:
            key = f"{name} (g={ng})"
            series[key] = FigureSeries(key)
            for n in SIZES:
                s = HeterogeneousSorter(PLATFORM2, n_gpus=ng,
                                        batch_size=BS, n_streams=2, **kw)
                series[key].add(n, s.sort(n=n, approach=ap).elapsed)
    series["Ref"] = FigureSeries("Ref")
    for n in SIZES:
        series["Ref"].add(n, cpu_reference_sort(PLATFORM2, n=n).elapsed)
    return series


@pytest.fixture(scope="module")
def series():
    return sweep()


def test_fig10_table(report, series, benchmark):
    names = [f"{c[0]} (g={g})" for g in (1, 2) for c in CONFIGS] + ["Ref"]
    rows = []
    for n in SIZES:
        rows.append([f"{n:.2e}", f"{dataset_gib(n):.2f}"]
                    + [f"{series[m].at(n):.2f}" for m in names])
    report(render_table(["n", "GiB"] + names, rows,
                        title="Fig. 10: response time [s] vs n, "
                              "PLATFORM2, 1 vs 2 GPUs (b_s=3.5e8)"))
    benchmark.pedantic(
        lambda: HeterogeneousSorter(
            PLATFORM2, n_gpus=2, batch_size=BS, n_streams=2).sort(
            n=SIZES[0], approach="pipedata"),
        rounds=1, iterations=1)


def test_fig10_two_gpus_beat_all_single(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in SIZES:
        best_dual = min(series[f"{c[0]} (g=2)"].at(n) for c in CONFIGS)
        worst_needed = min(series[f"{c[0]} (g=1)"].at(n) for c in CONFIGS)
        assert best_dual < worst_needed, n


def test_fig10_fastest_speedup_about_2x(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fastest = series["PM+ParMemCpy (g=2)"]
    sp_small = series["Ref"].at(SIZES[0]) / fastest.at(SIZES[0])
    sp_large = series["Ref"].at(SIZES[-1]) / fastest.at(SIZES[-1])
    # Paper: 1.89x and 2.02x.
    assert sp_small == pytest.approx(1.89, rel=0.20)
    assert sp_large == pytest.approx(2.02, rel=0.12)


def test_fig10_spread_shrinks_with_two_gpus(series, benchmark):
    """Shared PCIe: BLINEMULTI already saturates more bandwidth with 2
    GPUs, so pipelining buys relatively less (Sec. IV-F)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n = SIZES[-1]

    def spread(g):
        ts = [series[f"{c[0]} (g={g})"].at(n) for c in CONFIGS]
        return max(ts) / min(ts)

    assert spread(2) < spread(1)


def test_fig10_single_gpu_ordering_matches_platform1(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in SIZES:
        bm = series["BLineMulti (g=1)"].at(n)
        pd = series["PipeData (g=1)"].at(n)
        pm = series["PipeMerge (g=1)"].at(n)
        assert bm > pd > pm * 0.999, n
