"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``test_*`` in this directory regenerates one table or figure of the
paper: it sweeps the paper's parameter grid on the simulated platform,
prints the rows/series (visible with ``-s``; always written to
``benchmarks/results/``), asserts the figure's headline shape, and feeds
one representative run to pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Print a figure's text table and persist it to results/<test>.txt."""

    def _report(text: str) -> None:
        print()
        print(text)
        out = results_dir / f"{request.node.name}.txt"
        out.write_text(text + "\n")

    return _report
