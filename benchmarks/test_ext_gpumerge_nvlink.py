"""Extension: GPU-side merging across interconnect generations (Sec. V).

The paper's closing argument: faster links (NVLink) will make the CPU
merge the bottleneck, so merging must move to the GPU.  We implement the
GPU merge tree (repro.hetsort.gpumerge) and sweep the interconnect
bandwidth from PCIe v3 (16 GB/s/dir) to NVLink-class (75 GB/s/dir),
locating the crossover where GPUMERGE overtakes PIPEMERGE.
"""

import dataclasses

import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw import PLATFORM1
from repro.reporting import FigureSeries, crossover, render_table

N = int(2e9)
BS = int(2e8)
LINK_BW = [16e9, 32e9, 48e9, 64e9, 80e9]


def platform_with_link(bw: float):
    """PLATFORM1 with a faster interconnect (and a host bus that is no
    longer the narrower pipe -- NVLink-era hosts ship more DRAM
    bandwidth)."""
    pcie = dataclasses.replace(PLATFORM1.pcie, peak_bw=bw,
                               pinned_efficiency=0.9 if bw > 16e9
                               else PLATFORM1.pcie.pinned_efficiency)
    hostmem = dataclasses.replace(
        PLATFORM1.hostmem,
        copy_bus_bw=max(PLATFORM1.hostmem.copy_bus_bw, bw),
        per_core_copy_bw=12e9)
    return dataclasses.replace(PLATFORM1, name=f"LINK{bw / 1e9:.0f}",
                               pcie=pcie, hostmem=hostmem)


def sweep():
    cpu_merge = FigureSeries("PipeMerge (CPU merge)")
    gpu_merge = FigureSeries("GpuMerge (GPU merge tree)")
    for bw in LINK_BW:
        p = platform_with_link(bw)
        for series, ap in ((cpu_merge, "pipemerge"),
                           (gpu_merge, "gpumerge")):
            s = HeterogeneousSorter(p, batch_size=BS, n_streams=2,
                                    memcpy_threads=8)
            series.add(bw, s.sort(n=N, approach=ap).elapsed)
    return cpu_merge, gpu_merge


def test_ext_gpumerge_crossover(report, benchmark):
    cpu_merge, gpu_merge = sweep()
    rows = []
    for i, bw in enumerate(LINK_BW):
        rows.append([f"{bw / 1e9:.0f}", f"{cpu_merge.y[i]:.2f}",
                     f"{gpu_merge.y[i]:.2f}",
                     "GPU" if gpu_merge.y[i] < cpu_merge.y[i] else "CPU"])
    x = crossover(cpu_merge, gpu_merge)
    title = (f"Extension: CPU vs GPU merging vs link bandwidth "
             f"(n={N:.0e}, PLATFORM1-derived)\n"
             f"crossover at ~{x / 1e9:.0f} GB/s per direction"
             if x else
             "Extension: CPU vs GPU merging vs link bandwidth")
    report(render_table(
        ["link GB/s/dir", "PipeMerge [s]", "GpuMerge [s]", "winner"],
        rows, title=title))

    # Sec. V's prediction, quantified:
    assert gpu_merge.y[0] > cpu_merge.y[0]      # PCIe v3: CPU merge wins
    assert gpu_merge.y[-1] < cpu_merge.y[-1]    # NVLink-class: GPU wins
    assert x is not None and 16e9 < x < 80e9

    benchmark.pedantic(
        lambda: HeterogeneousSorter(
            platform_with_link(80e9), batch_size=BS, n_streams=2).sort(
            n=N, approach="gpumerge"),
        rounds=1, iterations=1)


def test_ext_gpumerge_functional(report, benchmark):
    """The GPU merge tree really sorts (functional mode)."""
    import numpy as np

    from repro.kernels.utils import is_sorted, same_multiset
    data = np.random.default_rng(3).random(100_000)
    s = HeterogeneousSorter(PLATFORM1, batch_size=20_000,
                            pinned_elements=4_000)
    r = s.sort(data, approach="gpumerge")
    assert is_sorted(r.output)
    assert same_multiset(data, r.output)
    report(f"gpumerge functional: n_b={r.plan.n_batches}, "
           f"merge-tree levels={r.meta['gpu_merge_levels']}, "
           f"simulated {r.elapsed * 1e3:.2f} ms")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
