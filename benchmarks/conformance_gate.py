#!/usr/bin/env python
"""Model-conformance gate: replay the pinned ``ci`` sweep grid and fail
on anomalies or fitted-slope drift against the committed mini-ledger.

The simulation is deterministic, so a same-seed sweep writes a
byte-stable ledger; ``benchmarks/results/conformance_baseline.jsonl``
freezes the ``ci`` grid.  This script re-runs the grid and fails when

* any run is flagged anomalous by :func:`repro.obs.group_conformance`
  (deviation from its group's fitted line beyond tolerance / z-score);
* any group's fitted slope drifted from the frozen ledger's by more
  than ``--slope-tolerance`` (default 2%) -- the model-vs-measured
  relationship changed, even if no single run looks anomalous.

With ``--archive PATH`` every run of the grid is appended to a
``repro.archive/v1`` archive (content-addressed, idempotent) and
anomaly failures are classified against the archived history (one-off
miss vs. sustained regression).  ``--json`` prints one machine-readable
``repro.gate/v1`` document instead of human text.

Usage::

    python benchmarks/conformance_gate.py                 # check
    python benchmarks/conformance_gate.py --update        # re-freeze
    python benchmarks/conformance_gate.py --json --archive runs.jsonl

Exit status: 0 = conformant, 1 = anomaly or slope drift.
"""

from __future__ import annotations

import argparse
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.errors import LedgerError  # noqa: E402
from repro.obs import (conformance_summary, load_ledger,  # noqa: E402
                       run_sweep, write_ledger)
from repro.obs.sweep import GRIDS, sweep_points  # noqa: E402

BASELINE = os.path.join(_HERE, "results", "conformance_baseline.jsonl")
GATE_SCHEMA = "repro.gate/v1"
GRID = "ci"
DEFAULT_SLOPE_TOLERANCE = 0.02

#: Informational output channel; main() points it at stderr under
#: --json so stdout stays one parseable document.
_INFO = sys.stdout


def say(msg: str) -> None:
    print(msg, file=_INFO)


def run_grid() -> list[dict]:
    """Re-run the pinned grid; returns its ledger records."""
    return run_sweep(sweep_points(GRID), model_n=GRIDS[GRID][1])


def check(baseline_records: list[dict], current: list[dict],
          slope_tolerance: float) -> list[str]:
    """Compare a fresh sweep against the frozen ledger; returns failure
    messages (empty = conformant)."""
    failures: list[str] = []
    base = conformance_summary(baseline_records)
    cur = conformance_summary(current)
    for a in cur["anomalies"]:
        failures.append(
            f"{a['run_id']} ({a['group']}): anomalous -- measured "
            f"{a['measured_s']:.6f}s vs fit {a['expected_s']:.6f}s "
            f"({'/'.join(a['flags'])})")
    for key, g in cur["groups"].items():
        frozen = base["groups"].get(key)
        if frozen is None:
            failures.append(f"{key}: group missing from baseline "
                            "(run with --update)")
            continue
        b_slope, c_slope = frozen["fitted_slope"], g["fitted_slope"]
        drift = abs(c_slope - b_slope) / b_slope if b_slope else 0.0
        status = "ok" if drift <= slope_tolerance else "FAIL"
        say(f"{key}: {status}  baseline slope {b_slope * 1e9:.4f} "
            f"ns/el  current {c_slope * 1e9:.4f} ns/el  "
            f"(drift {drift * 100:+.3f}%)")
        if drift > slope_tolerance:
            failures.append(
                f"{key}: fitted slope drifted {drift * 100:.2f}% "
                f"(baseline {b_slope:.6e}, current {c_slope:.6e}, "
                f"tolerance {slope_tolerance * 100:.1f}%)")
    missing = set(base["groups"]) - set(cur["groups"])
    for key in sorted(missing):
        failures.append(f"{key}: group vanished from the {GRID} grid")
    return failures


def gate_entries(records: list[dict], anomalies: list[dict]
                 ) -> list[dict]:
    """One archive entry per grid run, carrying its per-run gate
    verdict (anomalous or not)."""
    from repro.obs import entry_from_ledger
    flagged = {a["run_id"]: a for a in anomalies}
    entries = []
    for r in records:
        a = flagged.get(r["run_id"])
        gate = {"gate": "conformance", "ok": a is None,
                "failures": ([f"{r['run_id']}: anomalous "
                              f"({'/'.join(a['flags'])})"] if a else [])}
        entries.append(entry_from_ledger(r, source="gate:conformance",
                                         verdicts=[gate]))
    return entries


def classify_against_history(failures: list[str], entries: list[dict],
                             archive_path: str | None) -> list[str]:
    """Suffix per-run anomaly failures with the trend verdict from the
    archive: did the last archived runs of the same workload already
    fail their conformance verdict (sustained), or is this a one-off?"""
    if not archive_path or not os.path.exists(archive_path):
        return failures
    from repro.obs import load_archive
    from repro.obs.trends import classify_miss

    def was_beyond(e: dict) -> bool:
        return any(v["gate"] == "conformance" and not v["ok"]
                   for v in e["verdicts"])

    history = load_archive(archive_path)
    notes = {}
    for entry in entries:
        v = entry["verdicts"][0]
        if v["ok"]:
            continue
        prior = [was_beyond(e) for e in history
                 if e["fingerprint"] == entry["fingerprint"]]
        notes[entry["label"]] = classify_miss(prior)["message"]
    return [f"{msg} [{notes[msg.split(' ', 1)[0]]}]"
            if msg.split(" ", 1)[0] in notes else msg
            for msg in failures]


def main(argv=None) -> int:
    global _INFO
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline", default=BASELINE,
                   help="frozen mini-ledger JSONL path")
    p.add_argument("--slope-tolerance", type=float,
                   default=DEFAULT_SLOPE_TOLERANCE,
                   help="relative fitted-slope drift to tolerate "
                        "(default 0.02 = 2%%)")
    p.add_argument("--update", action="store_true",
                   help="re-run the grid and rewrite the baseline ledger")
    p.add_argument("--json", action="store_true",
                   help="print one repro.gate/v1 document on stdout "
                        "(progress lines go to stderr)")
    p.add_argument("--archive", default=None, metavar="PATH",
                   help="append every grid run to a repro.archive/v1 "
                        "archive and classify anomalies against its "
                        "history (one-off miss vs sustained regression)")
    args = p.parse_args(argv)
    if args.json:
        _INFO = sys.stderr

    records = run_grid()
    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        write_ledger(records, args.baseline)
        say(f"baseline updated: {args.baseline} "
            f"({len(records)} ledger lines)")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    try:
        baseline_records = load_ledger(args.baseline)
    except LedgerError as exc:
        print(f"baseline ledger unreadable: {exc}", file=sys.stderr)
        return 1
    failures = check(baseline_records, records,
                     slope_tolerance=args.slope_tolerance)
    entries = gate_entries(records,
                           conformance_summary(records)["anomalies"])
    failures = classify_against_history(failures, entries, args.archive)
    if args.archive:
        from repro.obs import append_entries
        fresh = append_entries(args.archive, entries)
        say(f"archived {len(fresh)} of {len(entries)} entries to "
            f"{args.archive}")
    if args.json:
        from repro.obs import canonical_json
        doc = {"schema": GATE_SCHEMA, "gate": "conformance",
               "ok": not failures, "failures": failures,
               "entries": entries}
        print(canonical_json(doc, indent=None))
        return 1 if failures else 0
    for msg in failures:
        print(f"NONCONFORMANT: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
