#!/usr/bin/env python
"""Model-conformance gate: replay the pinned ``ci`` sweep grid and fail
on anomalies or fitted-slope drift against the committed mini-ledger.

The simulation is deterministic, so a same-seed sweep writes a
byte-stable ledger; ``benchmarks/results/conformance_baseline.jsonl``
freezes the ``ci`` grid.  This script re-runs the grid and fails when

* any run is flagged anomalous by :func:`repro.obs.group_conformance`
  (deviation from its group's fitted line beyond tolerance / z-score);
* any group's fitted slope drifted from the frozen ledger's by more
  than ``--slope-tolerance`` (default 2%) -- the model-vs-measured
  relationship changed, even if no single run looks anomalous.

Usage::

    python benchmarks/conformance_gate.py                 # check
    python benchmarks/conformance_gate.py --update        # re-freeze

Exit status: 0 = conformant, 1 = anomaly or slope drift.
"""

from __future__ import annotations

import argparse
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.errors import LedgerError  # noqa: E402
from repro.obs import (conformance_summary, load_ledger,  # noqa: E402
                       run_sweep, write_ledger)
from repro.obs.sweep import GRIDS, sweep_points  # noqa: E402

BASELINE = os.path.join(_HERE, "results", "conformance_baseline.jsonl")
GRID = "ci"
DEFAULT_SLOPE_TOLERANCE = 0.02


def run_grid() -> list[dict]:
    """Re-run the pinned grid; returns its ledger records."""
    return run_sweep(sweep_points(GRID), model_n=GRIDS[GRID][1])


def check(baseline_records: list[dict], current: list[dict],
          slope_tolerance: float) -> list[str]:
    """Compare a fresh sweep against the frozen ledger; returns failure
    messages (empty = conformant)."""
    failures: list[str] = []
    base = conformance_summary(baseline_records)
    cur = conformance_summary(current)
    for a in cur["anomalies"]:
        failures.append(
            f"{a['run_id']} ({a['group']}): anomalous -- measured "
            f"{a['measured_s']:.6f}s vs fit {a['expected_s']:.6f}s "
            f"({'/'.join(a['flags'])})")
    for key, g in cur["groups"].items():
        frozen = base["groups"].get(key)
        if frozen is None:
            failures.append(f"{key}: group missing from baseline "
                            "(run with --update)")
            continue
        b_slope, c_slope = frozen["fitted_slope"], g["fitted_slope"]
        drift = abs(c_slope - b_slope) / b_slope if b_slope else 0.0
        status = "ok" if drift <= slope_tolerance else "FAIL"
        print(f"{key}: {status}  baseline slope {b_slope * 1e9:.4f} "
              f"ns/el  current {c_slope * 1e9:.4f} ns/el  "
              f"(drift {drift * 100:+.3f}%)")
        if drift > slope_tolerance:
            failures.append(
                f"{key}: fitted slope drifted {drift * 100:.2f}% "
                f"(baseline {b_slope:.6e}, current {c_slope:.6e}, "
                f"tolerance {slope_tolerance * 100:.1f}%)")
    missing = set(base["groups"]) - set(cur["groups"])
    for key in sorted(missing):
        failures.append(f"{key}: group vanished from the {GRID} grid")
    return failures


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline", default=BASELINE,
                   help="frozen mini-ledger JSONL path")
    p.add_argument("--slope-tolerance", type=float,
                   default=DEFAULT_SLOPE_TOLERANCE,
                   help="relative fitted-slope drift to tolerate "
                        "(default 0.02 = 2%%)")
    p.add_argument("--update", action="store_true",
                   help="re-run the grid and rewrite the baseline ledger")
    args = p.parse_args(argv)

    records = run_grid()
    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        write_ledger(records, args.baseline)
        print(f"baseline updated: {args.baseline} "
              f"({len(records)} ledger lines)")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    try:
        baseline_records = load_ledger(args.baseline)
    except LedgerError as exc:
        print(f"baseline ledger unreadable: {exc}", file=sys.stderr)
        return 1
    failures = check(baseline_records, records,
                     slope_tolerance=args.slope_tolerance)
    for msg in failures:
        print(f"NONCONFORMANT: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
