"""Micro-benchmarks of the *functional* kernels (real computation, real
wall-clock via pytest-benchmark).

These are the real-computation counterpart of the simulated studies: the
radix sort (Thrust stand-in) vs. numpy's sort, Merge Path vs. naive
concatenate-and-sort, the multiway merge engines, and sample sort.
"""

import numpy as np
import pytest

from repro.kernels import (bitonic_sort, introsort, merge_two,
                           multiway_merge, parallel_merge, sample_sort,
                           sort_floats)

N = 200_000


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(42).random(N)


@pytest.fixture(scope="module")
def runs():
    rng = np.random.default_rng(7)
    return [np.sort(rng.random(N // 10)) for _ in range(10)]


def test_bench_radix_sort(benchmark, data):
    out = benchmark(sort_floats, data)
    assert np.all(out[:-1] <= out[1:])


def test_bench_numpy_sort_baseline(benchmark, data):
    out = benchmark(np.sort, data)
    assert np.all(out[:-1] <= out[1:])


def test_bench_sample_sort(benchmark, data):
    out = benchmark(sample_sort, data, 16)
    assert np.all(out[:-1] <= out[1:])


def test_bench_bitonic_sort(benchmark, data):
    small = data[:16384]
    out = benchmark(bitonic_sort, small)
    assert np.all(out[:-1] <= out[1:])


def test_bench_introsort(benchmark, data):
    small = data[:50_000]
    out = benchmark(introsort, small)
    assert np.all(out[:-1] <= out[1:])


def test_bench_merge_two(benchmark, data):
    a = np.sort(data[:N // 2])
    b = np.sort(data[N // 2:])
    out = benchmark(merge_two, a, b)
    assert len(out) == N


def test_bench_parallel_merge_16_partitions(benchmark, data):
    a = np.sort(data[:N // 2])
    b = np.sort(data[N // 2:])
    out = benchmark(parallel_merge, a, b, 16)
    assert len(out) == N


def test_bench_multiway_merge_10_runs(benchmark, runs):
    out = benchmark(multiway_merge, runs)
    assert np.all(out[:-1] <= out[1:])
