"""Fig. 5: BLINE (n_b = 1) vs. the CPU reference on PLATFORM2.

Response time vs. n for inputs that fit in GPU global memory, with the
CPU/GPU response-time ratio on the right axis.  Paper anchor: the ratio
stays between 1.22 and 1.32 across the plotted sizes.
"""

import pytest

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hw import PLATFORM2
from repro.reporting import render_table
from repro.workloads import dataset_gib

SIZES = [int(1e8), int(3e8), int(5e8), int(7e8)]


def sweep():
    rows = []
    ratios = []
    for n in SIZES:
        bline = HeterogeneousSorter(PLATFORM2).sort(n=n, approach="bline")
        ref = cpu_reference_sort(PLATFORM2, n=n)
        ratio = ref.elapsed / bline.elapsed
        ratios.append(ratio)
        rows.append([f"{n:.1e}", f"{dataset_gib(n):.3f}",
                     f"{bline.elapsed:.3f}", f"{ref.elapsed:.3f}",
                     f"{ratio:.2f}"])
    return rows, ratios


def test_fig5(report, benchmark):
    rows, ratios = sweep()
    report(render_table(
        ["n", "GiB", "BLine [s]", "Ref 20T [s]", "CPU/GPU ratio"],
        rows,
        title="Fig. 5: BLINE vs CPU reference, n_b = 1 (PLATFORM2); "
              "paper ratio: 1.22-1.32"))

    # The GPU wins but not dramatically once all overheads are counted.
    for r in ratios:
        assert 1.1 <= r <= 1.45
    # Paper's reported band at the larger sizes.
    assert ratios[-1] == pytest.approx(1.29, abs=0.08)

    benchmark.pedantic(
        lambda: HeterogeneousSorter(PLATFORM2).sort(n=SIZES[0],
                                                    approach="bline"),
        rounds=1, iterations=1)
