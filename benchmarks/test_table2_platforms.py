"""Table II: the two hardware platforms, plus the calibrated rates the
simulation runs them at."""

from repro.hw import PLATFORM1, PLATFORM2
from repro.reporting import render_table


def platform_rows(p):
    return [
        [p.name, p.cpu.model, p.cpu.cores, f"{p.cpu.clock_ghz} GHz",
         f"{p.hostmem.capacity_bytes // 1024 ** 3} GiB",
         f"{p.n_gpus}x {p.gpus[0].model}",
         sum(g.cuda_cores for g in p.gpus),
         f"{p.gpus[0].mem_bytes // 1024 ** 3} GiB"],
    ]


def calibration_rows(p):
    return [[
        p.name,
        f"{p.gpus[0].sort_rate_f64 / 1e9:.2f}e9 el/s",
        f"{p.pcie.flow_cap(True) / 1e9:.1f} GB/s",
        f"{p.hostmem.per_core_copy_bw / 1e9:.1f} GB/s",
        f"{p.hostmem.copy_bus_bw / 1e9:.1f} GB/s",
        f"{p.merge.per_core_rate / 1e8:.2f}e8 el/s",
        p.reference_threads,
    ]]


def test_table2(report, benchmark):
    table = render_table(
        ["Platform", "CPU", "Cores", "Clock", "Host mem", "GPU",
         "GPU cores", "GPU mem"],
        platform_rows(PLATFORM1) + platform_rows(PLATFORM2),
        title="Table II: hardware platforms")
    calib = render_table(
        ["Platform", "GPU sort", "PCIe pinned", "memcpy/core",
         "copy bus", "merge/core", "ref threads"],
        calibration_rows(PLATFORM1) + calibration_rows(PLATFORM2),
        title="Calibrated simulation rates (see repro/hw/platforms.py)")
    report(table + "\n\n" + calib)

    assert PLATFORM1.cpu.cores == 16 and PLATFORM2.cpu.cores == 20
    assert PLATFORM1.n_gpus == 1 and PLATFORM2.n_gpus == 2

    benchmark.pedantic(lambda: render_table(["a"], [[1]]),
                       rounds=1, iterations=1)
