"""Ablation studies for the design choices DESIGN.md calls out.

Not figures of the paper, but sweeps over the knobs the paper discusses
qualitatively:

* stream count n_s (Sec. IV-F: more streams = more overlap but smaller
  batches and more merging);
* pinned-buffer size p_s (Sec. IV-E1: tiny buffers amortise allocation
  but many chunks cost sync; huge buffers cost allocation);
* pinned vs pageable staging for the blocking baseline;
* input distribution insensitivity (Sec. IV-A's claim);
* the PIPEMERGE pair-merge quota heuristic vs merging nothing/everything.
"""

import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw import PLATFORM1
from repro.kernels.utils import is_sorted
from repro.reporting import render_table
from repro.workloads import generate

N = int(2e9)


def test_ablation_stream_count(report, benchmark):
    """n_s sweep at fixed n: the batch size shrinks as 1/n_s (GPU memory
    constraint), growing n_b and the merge work."""
    rows = []
    times = {}
    for ns in (1, 2, 4):
        s = HeterogeneousSorter(PLATFORM1, n_streams=ns)
        r = s.sort(n=N, approach="pipedata")
        times[ns] = r.elapsed
        rows.append([ns, f"{r.plan.batch_size:.2e}", r.plan.n_batches,
                     f"{r.elapsed:.2f}"])
    report(render_table(
        ["n_s", "b_s", "n_b", "time [s]"], rows,
        title=f"Ablation: stream count (PIPEDATA, n={N:.0e}, PLATFORM1, "
              "maximal b_s per n_s)"))
    # 2 streams (the paper's choice) beats 1 (no overlap).
    assert times[2] < times[1]
    benchmark.pedantic(
        lambda: HeterogeneousSorter(PLATFORM1, n_streams=2).sort(
            n=N, approach="pipedata"), rounds=1, iterations=1)


def test_ablation_pinned_buffer_size(report, benchmark):
    """p_s sweep: the paper's 1e6 sits in the flat optimum between
    per-chunk overhead (small p_s) and allocation cost (large p_s)."""
    rows = []
    times = {}
    for ps in (10 ** 4, 10 ** 5, 10 ** 6, 10 ** 7, 10 ** 8):
        s = HeterogeneousSorter(PLATFORM1, batch_size=int(5e8),
                                n_streams=2, pinned_elements=ps)
        r = s.sort(n=N, approach="pipedata")
        times[ps] = r.elapsed
        rows.append([f"{ps:.0e}", f"{r.elapsed:.3f}",
                     f"{r.component('Sync'):.3f}",
                     f"{r.component('PinnedAlloc'):.3f}"])
    report(render_table(
        ["p_s", "time [s]", "sync [s]", "alloc [s]"], rows,
        title=f"Ablation: pinned staging buffer size (PIPEDATA, "
              f"n={N:.0e})"))
    # The paper's p_s = 1e6 is within 5% of the best tested value.
    best = min(times.values())
    assert times[10 ** 6] <= 1.05 * best
    # Very small buffers pay visible sync overhead.
    assert times[10 ** 4] > times[10 ** 6]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_staging_mode(report, benchmark):
    """Pinned staging vs plain pageable cudaMemcpy for BLINEMULTI."""
    rows = []
    times = {}
    for staging in ("pinned", "pageable"):
        s = HeterogeneousSorter(PLATFORM1, batch_size=int(5e8),
                                staging=staging)
        r = s.sort(n=N, approach="blinemulti")
        times[staging] = r.elapsed
        rows.append([staging, f"{r.elapsed:.2f}",
                     f"{r.component('HtoD') + r.component('DtoH'):.2f}",
                     f"{r.component('MCpy'):.2f}"])
    report(render_table(
        ["staging", "time [s]", "PCIe [s]", "MCpy [s]"], rows,
        title="Ablation: blocking-path staging mode (BLINEMULTI, "
              f"n={N:.0e})"))
    # Serially they are close: the driver stages pageable copies anyway.
    ratio = times["pinned"] / times["pageable"]
    assert 0.75 <= ratio <= 1.25
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_distribution_insensitivity(report, benchmark):
    """Sec. IV-A: hybrid-sort response time is dominated by transfers and
    merging, so the input distribution barely matters.  Verified in
    functional mode (real data, real radix sort) at small scale: the
    simulated time is identical by construction, and the output is
    correct for every distribution."""
    rows = []
    times = {}
    for dist in ("uniform", "gaussian", "sorted", "reverse",
                 "duplicates"):
        data = generate(120_000, dist, seed=11)
        s = HeterogeneousSorter(PLATFORM1, batch_size=30_000,
                                pinned_elements=6_000)
        r = s.sort(data, approach="pipemerge")
        assert is_sorted(r.output)
        times[dist] = r.elapsed
        rows.append([dist, f"{r.elapsed * 1e3:.3f}"])
    report(render_table(
        ["distribution", "simulated time [ms]"], rows,
        title="Ablation: input-distribution insensitivity "
              "(PIPEMERGE, functional, n=120k)"))
    vals = list(times.values())
    assert max(vals) / min(vals) < 1.02
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_pairwise_quota(report, benchmark):
    """The paper's quota heuristic vs. no pipelined merges (= PIPEDATA)
    and vs. merging aggressively (quota = n_b / 2): aggressive merging
    risks delaying the final multiway merge (Sec. III-D3)."""
    n, bs = N, int(2e8)   # 10 batches
    rows = []
    times = {}
    for label, kw in [
        ("none (PipeData)", None),
        ("paper heuristic (4)", {}),
        ("aggressive (5)", {"pipeline_merge_threads": None}),
    ]:
        if label.startswith("none"):
            s = HeterogeneousSorter(PLATFORM1, batch_size=bs, n_streams=2)
            r = s.sort(n=n, approach="pipedata")
        elif label.startswith("paper"):
            s = HeterogeneousSorter(PLATFORM1, batch_size=bs, n_streams=2)
            r = s.sort(n=n, approach="pipemerge")
        else:
            # Force one extra pair merge by bumping the quota: emulate by
            # a plan with 11 batches (quota 5) at slightly smaller b_s.
            s = HeterogeneousSorter(PLATFORM1,
                                    batch_size=int(n / 11) + 1,
                                    n_streams=2)
            r = s.sort(n=n, approach="pipemerge")
        times[label] = r.elapsed
        rows.append([label, r.plan.n_batches,
                     r.meta.get("pairwise_merged", 0),
                     f"{r.elapsed:.2f}"])
    report(render_table(
        ["policy", "n_b", "pair merges", "time [s]"], rows,
        title=f"Ablation: pipelined pair-merge policy (n={n:.0e})"))
    assert times["paper heuristic (4)"] <= times["none (PipeData)"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
