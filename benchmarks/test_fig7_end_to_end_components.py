"""Fig. 7: the three components of the related work's "end-to-end" time
for ~6 GB of data on PLATFORM1, ours vs. the values estimated from
[Stehle & Jacobsen 2017, Fig. 8].

Paper anchors: HtoD 0.536 s / DtoH 0.484 s (ours) vs 0.542 / 0.477
(theirs); GPUSort takes less time than either transfer.
"""

import pytest

from repro.hw import PLATFORM1
from repro.model import PAPER_FIG7_SECONDS, end_to_end_accounting
from repro.reporting import render_table

N = int(8e8)  # 5.96 GiB of 64-bit keys


def test_fig7(report, benchmark):
    acct = benchmark.pedantic(
        lambda: end_to_end_accounting(PLATFORM1, N),
        rounds=1, iterations=1)

    rows = [
        ["HtoD", f"{acct.htod:.3f}",
         f"{PAPER_FIG7_SECONDS['HtoD_ours']:.3f}",
         f"{PAPER_FIG7_SECONDS['HtoD_related']:.3f}"],
        ["DtoH", f"{acct.dtoh:.3f}",
         f"{PAPER_FIG7_SECONDS['DtoH_ours']:.3f}",
         f"{PAPER_FIG7_SECONDS['DtoH_related']:.3f}"],
        ["GPUSort", f"{acct.gpusort:.3f}", "-", "-"],
        ["sum (related-work end-to-end)",
         f"{acct.related_work_total:.3f}", "-", "-"],
    ]
    report(render_table(
        ["component", "simulated [s]", "paper (ours) [s]",
         "paper (related) [s]"],
        rows,
        title=f"Fig. 7: end-to-end components, n = {N:.0e} "
              f"(5.96 GiB), PLATFORM1"))

    assert acct.htod == pytest.approx(0.536, rel=0.05)
    assert acct.dtoh == pytest.approx(0.484, rel=0.15)
    # Transfers dominate the sort (the related work's motivation).
    assert acct.gpusort < acct.htod
    assert acct.gpusort < acct.htod + acct.dtoh
