"""Fig. 8: the missing-overhead problem.

Average response time vs. n for the components of BLINE (n_b = 1) on
PLATFORM1: the related-work end-to-end (HtoD + DtoH + GPUSort only) vs.
the full response time including the staging copies, pinned allocation
and synchronisation it omits.

Paper shape: the full BLINE total sits far above the three-component sum,
and the gap ("missing overhead") grows linearly with n.  Also reproduced:
allocating one pinned buffer of p_s = n (2.2 s at n = 8e8) would exceed
the whole related-work end-to-end time, which is why a small reused
staging buffer (p_s = 1e6) is the right design despite its copy cost.
"""

import pytest

from repro.hw import PLATFORM1
from repro.model import end_to_end_accounting
from repro.reporting import FigureSeries, render_table
from repro.workloads import dataset_gib

SIZES = [int(2e8), int(4e8), int(6e8), int(8e8), int(1e9)]


def sweep():
    return {n: end_to_end_accounting(PLATFORM1, n) for n in SIZES}


def test_fig8(report, benchmark):
    accts = sweep()
    related = FigureSeries("related-work")
    full = FigureSeries("full BLine")
    rows = []
    for n in SIZES:
        a = accts[n]
        related.add(n, a.related_work_total)
        full.add(n, a.full_elapsed)
        rows.append([f"{n:.0e}", f"{dataset_gib(n):.2f}",
                     f"{a.htod:.3f}", f"{a.dtoh:.3f}",
                     f"{a.gpusort:.3f}", f"{a.related_work_total:.3f}",
                     f"{a.mcpy:.3f}", f"{a.pinned_alloc:.3f}",
                     f"{a.sync:.3f}", f"{a.full_elapsed:.3f}",
                     f"{a.missing_overhead:.3f}"])
    report(render_table(
        ["n", "GiB", "HtoD", "DtoH", "GPUSort", "related e2e",
         "MCpy", "alloc", "sync", "full e2e", "missing"],
        rows,
        title="Fig. 8: related-work end-to-end vs full BLINE response "
              "time [s] (PLATFORM1)"))

    # The gap is substantial and grows ~linearly with n.
    for n in SIZES:
        a = accts[n]
        assert a.full_elapsed > 1.4 * a.related_work_total
    first, last = accts[SIZES[0]], accts[SIZES[-1]]
    growth = last.missing_overhead / first.missing_overhead
    assert growth == pytest.approx(SIZES[-1] / SIZES[0], rel=0.25)

    # The p_s = n alternative is worse than the whole related-work time.
    full_alloc = PLATFORM1.hostmem.pinned_alloc_seconds(8 * 8e8)
    assert full_alloc == pytest.approx(2.2, rel=0.02)
    assert full_alloc > accts[int(8e8)].related_work_total

    benchmark.pedantic(lambda: end_to_end_accounting(PLATFORM1, SIZES[0]),
                       rounds=1, iterations=1)
