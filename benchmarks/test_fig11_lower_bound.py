"""Fig. 11: the lower-bound baseline models vs. PIPEDATA on PLATFORM2.

The models are derived exactly as in Sec. IV-G (from simulated BLINE runs
at near-capacity n); the paper's fitted slopes are y = 6.278e-9 * n
(1 GPU) and y = 3.706e-9 * n (2 GPUs).  Shape anchors:

* PIPEDATA beats the model at the smallest n (overlap wins);
* the advantage erodes as n grows (the multiway merge), ending near
  parity (the paper reports 0.93x / 0.88x slowdowns at n = 4.9e9).
"""

import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw import PLATFORM2
from repro.model import measure_bline_throughput, paper_slopes
from repro.reporting import render_table
from repro.workloads import dataset_gib

BS = int(3.5e8)
SIZES = [4 * BS, 8 * BS, 11 * BS, 14 * BS]


def sweep():
    models = {g: measure_bline_throughput(PLATFORM2, n_gpus=g)
              for g in (1, 2)}
    pipedata = {}
    for g in (1, 2):
        s = HeterogeneousSorter(PLATFORM2, n_gpus=g, batch_size=BS,
                                n_streams=2)
        pipedata[g] = {n: s.sort(n=n, approach="pipedata").elapsed
                       for n in SIZES}
    return models, pipedata


@pytest.fixture(scope="module")
def data():
    return sweep()


def test_fig11_table(report, data, benchmark):
    models, pipedata = data
    rows = []
    for n in SIZES:
        rows.append([
            f"{n:.2e}", f"{dataset_gib(n):.2f}",
            f"{pipedata[1][n]:.2f}", f"{models[1].seconds(n):.2f}",
            f"{models[1].slowdown_of(pipedata[1][n], n):.2f}",
            f"{pipedata[2][n]:.2f}", f"{models[2].seconds(n):.2f}",
            f"{models[2].slowdown_of(pipedata[2][n], n):.2f}",
        ])
    title = (
        "Fig. 11: lower-bound models vs PIPEDATA (PLATFORM2)\n"
        f"model slopes: 1 GPU {models[1].slope * 1e9:.3f} ns/el "
        f"(paper {paper_slopes()[1] * 1e9:.3f}), "
        f"2 GPU {models[2].slope * 1e9:.3f} ns/el "
        f"(paper {paper_slopes()[2] * 1e9:.3f})")
    report(render_table(
        ["n", "GiB", "PipeData g1", "model g1", "model/PD g1",
         "PipeData g2", "model g2", "model/PD g2"],
        rows, title=title))
    benchmark.pedantic(lambda: measure_bline_throughput(PLATFORM2, 1),
                       rounds=1, iterations=1)


def test_fig11_slopes_match_paper(data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    models, _ = data
    assert models[1].slope == pytest.approx(paper_slopes()[1], rel=0.08)
    assert models[2].slope == pytest.approx(paper_slopes()[2], rel=0.15)


def test_fig11_pipedata_beats_model_at_smallest_n(data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    models, pipedata = data
    n = SIZES[0]
    for g in (1, 2):
        assert pipedata[g][n] < models[g].seconds(n), g


def test_fig11_advantage_erodes_with_n(data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    models, pipedata = data
    for g in (1, 2):
        slowdowns = [models[g].slowdown_of(pipedata[g][n], n)
                     for n in SIZES]
        assert slowdowns == sorted(slowdowns, reverse=True), g
        # Ends near parity (paper: 0.93x / 0.88x).
        assert slowdowns[-1] == pytest.approx(1.0, abs=0.15), g


def test_fig11_two_gpu_slowdown_worse_than_one(data, benchmark):
    """Paper: the slowdown is worse for the 2-GPU system (shared PCIe)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    models, pipedata = data
    n = SIZES[-1]
    s1 = models[1].slowdown_of(pipedata[1][n], n)
    s2 = models[2].slowdown_of(pipedata[2][n], n)
    assert s2 <= s1 + 0.05
