"""Fig. 6: pair-wise merge scalability on PLATFORM1.

(a) response time merging two sorted sublists of 0.5e9 elements each
(n = 1e9 total) for 1-16 threads; (b) speedup.  Paper anchor: 8.14x at
16 threads (memory-bound, so well below perfect).

The functional counterpart (Merge-Path partitioning really merging
arrays) is micro-benchmarked in test_kernels_micro.py.
"""

import pytest

from repro.cpu import pairwise_merge_seconds
from repro.hw import PLATFORM1
from repro.reporting import render_table

THREADS = [1, 2, 4, 8, 16]
N = 10 ** 9


def sweep():
    times = {t: pairwise_merge_seconds(PLATFORM1, N, t) for t in THREADS}
    return times


def test_fig6(report, benchmark):
    times = sweep()
    t1 = times[1]
    rows = [[t, f"{times[t]:.3f}", f"{t1 / times[t]:.2f}", t]
            for t in THREADS]
    report(render_table(
        ["threads", "time [s]", "speedup", "perfect"],
        rows,
        title=f"Fig. 6: merging two sorted 0.5e9-element sublists "
              f"(PLATFORM1); paper: 7.0 s sequential, 8.14x @ 16T"))

    assert t1 == pytest.approx(7.0, rel=0.02)
    assert t1 / times[16] == pytest.approx(8.14, rel=0.02)
    ys = [times[t] for t in THREADS]
    assert ys == sorted(ys, reverse=True)
    # Memory-bound: visibly below perfect scaling at 16 threads.
    assert t1 / times[16] < 0.75 * 16

    benchmark.pedantic(sweep, rounds=1, iterations=1)
