#!/usr/bin/env python
"""Trace-diff regression gate: re-run pinned scenarios, diff against the
committed baseline, fail on makespan regressions beyond tolerance.

The simulation is deterministic, so every scenario's run report (makespan,
per-category time, critical path, span-shape index) is a pure function of
the code.  ``benchmarks/results/baseline.json`` freezes those reports;
this script re-runs the scenarios and applies
:func:`repro.obs.diff.check_regression` to each.

Usage::

    python benchmarks/regression_gate.py                 # check
    python benchmarks/regression_gate.py --update        # re-freeze
    python benchmarks/regression_gate.py --trace-dir out # + Perfetto JSONs

Exit status: 0 = all scenarios within tolerance, 1 = regression or
structural drift (or a scenario missing from the baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.hetsort import HeterogeneousSorter  # noqa: E402
from repro.hw.platforms import get_platform  # noqa: E402
from repro.obs import check_regression, run_report  # noqa: E402

BASELINE = os.path.join(_HERE, "results", "baseline.json")
BASELINE_SCHEMA = "repro.baseline/v1"
DEFAULT_TOLERANCE = 0.02

#: Pinned scenarios: small enough for CI, spanning the blocking baseline
#: and the fastest pipelined approach (one multi-batch, multi-stream).
SCENARIOS = [
    {"name": "bline_1m", "platform": "PLATFORM1", "approach": "bline",
     "n": 1_000_000, "pinned_elements": 50_000},
    {"name": "pipemerge_2m", "platform": "PLATFORM1",
     "approach": "pipemerge", "n": 2_000_000, "batch_size": 250_000,
     "pinned_elements": 50_000},
]


def run_scenario(sc: dict):
    """Run one pinned scenario; returns its SortResult."""
    platform = get_platform(sc["platform"])
    kwargs = {k: sc[k] for k in ("batch_size", "pinned_elements",
                                 "n_streams", "memcpy_threads")
              if k in sc}
    sorter = HeterogeneousSorter(platform, approach=sc["approach"],
                                 **kwargs)
    return sorter.sort(n=sc["n"])


def build_baseline(trace_dir: str | None = None) -> dict:
    """Run every scenario; returns the baseline document (and optionally
    writes one Perfetto trace JSON per scenario into ``trace_dir``)."""
    scenarios = {}
    for sc in SCENARIOS:
        res = run_scenario(sc)
        scenarios[sc["name"]] = run_report(res, label=sc["name"])
        if trace_dir:
            from repro.reporting import write_chrome_trace
            os.makedirs(trace_dir, exist_ok=True)
            path = os.path.join(trace_dir, f"{sc['name']}.trace.json")
            write_chrome_trace(res.trace, path, counters=res.recorder)
            print(f"wrote {path}")
    return {"schema": BASELINE_SCHEMA, "tolerance": DEFAULT_TOLERANCE,
            "scenarios": scenarios}


def check(baseline: dict, tolerance: float | None = None,
          trace_dir: str | None = None) -> list[str]:
    """Run the scenarios and compare; returns failure messages."""
    tol = baseline.get("tolerance", DEFAULT_TOLERANCE) \
        if tolerance is None else tolerance
    current = build_baseline(trace_dir=trace_dir)
    failures: list[str] = []
    for sc in SCENARIOS:
        name = sc["name"]
        frozen = baseline.get("scenarios", {}).get(name)
        if frozen is None:
            failures.append(f"{name}: missing from baseline "
                            "(run with --update)")
            continue
        verdict = check_regression(current["scenarios"][name], frozen,
                                   tolerance=tol)
        cur = current["scenarios"][name]["makespan_s"]
        base = frozen["makespan_s"]
        status = "ok" if verdict["ok"] else "FAIL"
        print(f"{name}: {status}  baseline {base:.6f}s  "
              f"current {cur:.6f}s  ({(cur - base) / base * 100:+.3f}%)")
        for msg in verdict["failures"]:
            failures.append(f"{name}: {msg}")
    return failures


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline", default=BASELINE,
                   help="baseline JSON path")
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative makespan growth to tolerate "
                        "(default: the baseline's own)")
    p.add_argument("--update", action="store_true",
                   help="re-run the scenarios and rewrite the baseline")
    p.add_argument("--trace-dir", default=None,
                   help="also write one Perfetto trace JSON per scenario")
    args = p.parse_args(argv)

    if args.update:
        doc = build_baseline(trace_dir=args.trace_dir)
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(doc['scenarios'])} scenarios)")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    failures = check(baseline, tolerance=args.tolerance,
                     trace_dir=args.trace_dir)
    for msg in failures:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
