#!/usr/bin/env python
"""Trace-diff regression gate: re-run pinned scenarios, diff against the
committed baseline, fail on makespan regressions beyond tolerance.

The simulation is deterministic, so every scenario's run report (makespan,
per-category time, critical path, span-shape index) is a pure function of
the code.  ``benchmarks/results/baseline.json`` freezes those reports;
this script re-runs the scenarios and applies
:func:`repro.obs.diff.check_regression` to each.

The ``--engine`` mode is the **simulator-throughput gate**: it replays
pinned event-processing scenarios (the sorter hot path and an
allocator-dominated flow storm), reads events-processed and wall-clock
from the :mod:`repro.obs.profile` hooks, and compares against
``benchmarks/results/engine_baseline.json``.  Two checks per scenario:

* ``events`` must match the frozen count **exactly** -- the event count
  is a pure function of the deterministic simulation, so any drift is a
  semantic change, not noise;
* events/sec must stay above ``events_per_s * floor_factor`` -- a
  conservative ratchet (CI machines vary; the factor absorbs that, while
  still catching an order-of-magnitude hot-path regression).

The ``--memory`` mode is the **peak-occupancy gate**: it re-runs pinned
scenarios with the ``repro.memory/v1`` allocation ledger attached and
compares every pool's peak occupancy (and alloc/free counts) against
``benchmarks/results/memory_baseline.json`` **exactly** -- occupancy is
a pure function of the deterministic simulation, so any drift is a
semantic change.  Each scenario is additionally confronted with the
analytic capacity planner (``repro plan-mem``): a healthy run must match
the predicted peaks with zero residual, and its ledger must balance.

With ``--archive PATH`` every gate measurement is also appended to a
``repro.archive/v1`` run archive (content-addressed, idempotent) and a
failure message is classified against the archived history: a *one-off
miss* (previous runs were within tolerance) reads differently from a
*sustained regression* (three consecutive archived runs beyond it).
``--json`` prints one machine-readable ``repro.gate/v1`` document --
the same entry schema the archive ingests -- instead of human text.

Usage::

    python benchmarks/regression_gate.py                 # trace-diff gate
    python benchmarks/regression_gate.py --update        # re-freeze
    python benchmarks/regression_gate.py --trace-dir out # + Perfetto JSONs
    python benchmarks/regression_gate.py --engine        # throughput gate
    python benchmarks/regression_gate.py --engine --update
    python benchmarks/regression_gate.py --engine --profile-out p.json
    python benchmarks/regression_gate.py --memory         # occupancy gate
    python benchmarks/regression_gate.py --memory --update
    python benchmarks/regression_gate.py --service        # QoS verdict gate
    python benchmarks/regression_gate.py --service --update
    python benchmarks/regression_gate.py --json --archive runs.jsonl

Exit status: 0 = all scenarios within tolerance, 1 = regression or
structural drift (or a scenario missing from the baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, os.pardir, "src"))

from repro.hetsort import HeterogeneousSorter  # noqa: E402
from repro.hw.platforms import get_platform  # noqa: E402
from repro.obs import check_regression, run_report  # noqa: E402

BASELINE = os.path.join(_HERE, "results", "baseline.json")
BASELINE_SCHEMA = "repro.baseline/v1"
GATE_SCHEMA = "repro.gate/v1"
DEFAULT_TOLERANCE = 0.02

#: Informational output channel; main() points it at stderr under
#: --json so stdout stays one parseable document.
_INFO = sys.stdout


def say(msg: str) -> None:
    print(msg, file=_INFO)


def trend_note(history: list[dict], fingerprint: str, beyond) -> str:
    """Classify a failing measurement against archived history: one-off
    miss vs. sustained regression (``beyond(entry) -> bool`` says
    whether a prior archived run already sat beyond tolerance)."""
    from repro.obs.trends import classify_miss
    prior = [bool(beyond(e)) for e in history
             if e["fingerprint"] == fingerprint]
    return classify_miss(prior)["message"]


def load_history(archive_path: str | None) -> list[dict]:
    """Prior archive entries (before this gate run appends its own)."""
    if not archive_path or not os.path.exists(archive_path):
        return []
    from repro.obs import load_archive
    return load_archive(archive_path)


def archive_entries(archive_path: str | None,
                    entries: list[dict]) -> None:
    if not archive_path:
        return
    from repro.obs import append_entries
    fresh = append_entries(archive_path, entries)
    say(f"archived {len(fresh)} of {len(entries)} entries to "
        f"{archive_path}")

#: Pinned scenarios: small enough for CI, spanning the blocking baseline
#: and the fastest pipelined approach (one multi-batch, multi-stream).
SCENARIOS = [
    {"name": "bline_1m", "platform": "PLATFORM1", "approach": "bline",
     "n": 1_000_000, "pinned_elements": 50_000},
    {"name": "pipemerge_2m", "platform": "PLATFORM1",
     "approach": "pipemerge", "n": 2_000_000, "batch_size": 250_000,
     "pinned_elements": 50_000},
]


def run_scenario(sc: dict):
    """Run one pinned scenario; returns its SortResult."""
    platform = get_platform(sc["platform"])
    kwargs = {k: sc[k] for k in ("batch_size", "pinned_elements",
                                 "n_streams", "memcpy_threads")
              if k in sc}
    sorter = HeterogeneousSorter(platform, approach=sc["approach"],
                                 n_gpus=sc.get("n_gpus", 1), **kwargs)
    return sorter.sort(n=sc["n"])


def run_scenarios(trace_dir: str | None = None) -> dict:
    """Run every pinned scenario once; returns
    ``{name: (scenario, SortResult, report)}`` (and optionally writes
    one Perfetto trace JSON per scenario into ``trace_dir``)."""
    runs = {}
    for sc in SCENARIOS:
        res = run_scenario(sc)
        runs[sc["name"]] = (sc, res, run_report(res, label=sc["name"]))
        if trace_dir:
            from repro.reporting import write_chrome_trace
            os.makedirs(trace_dir, exist_ok=True)
            path = os.path.join(trace_dir, f"{sc['name']}.trace.json")
            write_chrome_trace(res.trace, path, counters=res.recorder)
            say(f"wrote {path}")
    return runs


def build_baseline(trace_dir: str | None = None,
                   runs: dict | None = None) -> dict:
    """The baseline document for a scenario sweep (fresh by default)."""
    runs = runs if runs is not None else run_scenarios(trace_dir)
    return {"schema": BASELINE_SCHEMA, "tolerance": DEFAULT_TOLERANCE,
            "scenarios": {name: report
                          for name, (_, _, report) in runs.items()}}


def check(baseline: dict, tolerance: float | None = None,
          trace_dir: str | None = None, runs: dict | None = None,
          verdicts: dict | None = None) -> list[str]:
    """Run the scenarios and compare; returns failure messages.

    When ``verdicts`` (a dict) is passed, it is filled with one
    ``{"ok", "failures", "threshold_s"}`` record per scenario for the
    archive layer.
    """
    tol = baseline.get("tolerance", DEFAULT_TOLERANCE) \
        if tolerance is None else tolerance
    runs = runs if runs is not None else run_scenarios(trace_dir)
    failures: list[str] = []
    for sc in SCENARIOS:
        name = sc["name"]
        _, _, report = runs[name]
        frozen = baseline.get("scenarios", {}).get(name)
        if frozen is None:
            msg = f"{name}: missing from baseline (run with --update)"
            failures.append(msg)
            if verdicts is not None:
                verdicts[name] = {"ok": False, "failures": [msg],
                                  "threshold_s": None}
            continue
        verdict = check_regression(report, frozen, tolerance=tol)
        cur = report["makespan_s"]
        base = frozen["makespan_s"]
        status = "ok" if verdict["ok"] else "FAIL"
        say(f"{name}: {status}  baseline {base:.6f}s  "
            f"current {cur:.6f}s  ({(cur - base) / base * 100:+.3f}%)")
        scoped = [f"{name}: {msg}" for msg in verdict["failures"]]
        failures.extend(scoped)
        if verdicts is not None:
            verdicts[name] = {"ok": verdict["ok"], "failures": scoped,
                              "threshold_s": base * (1.0 + tol)}
    return failures


# ---------------------------------------------------------------------------
# Simulator-throughput gate (--engine)
# ---------------------------------------------------------------------------

ENGINE_BASELINE = os.path.join(_HERE, "results", "engine_baseline.json")
ENGINE_SCHEMA = "repro.engine_baseline/v1"

#: How far below the frozen events/sec the gate tolerates.  Wall-clock
#: on shared CI runners swings by 2-3x; an order-of-magnitude hot-path
#: regression still trips it.
FLOOR_FACTOR = 0.25

#: Best-of-N wall-clock sampling per scenario (plus one warm-up).
ENGINE_REPS = 3


def _engine_sorter_scenario():
    """The sorter hot path: a mid-size PIPEDATA run on the multi-GPU
    platform (the fig11 configuration, scaled for CI)."""
    from repro.hw.platforms import get_platform
    sorter = HeterogeneousSorter(get_platform("PLATFORM2"), n_gpus=2,
                                 approach="pipedata", n_streams=2,
                                 batch_size=1_000_000,
                                 pinned_elements=100_000)
    sorter.sort(n=80_000_000)


def _engine_flow_stress_scenario():
    """Allocator-dominated storm: hundreds of concurrent flows over
    disjoint link components (the workload the incremental water-filling
    recompute exists for)."""
    from repro.sim.bandwidth import FlowNetwork
    from repro.sim.engine import Environment
    env = Environment()
    net = FlowNetwork(env)
    links = [net.add_link(f"l{i}", 10e9) for i in range(32)]

    def prog(i):
        for _ in range(4):
            yield net.transfer(1e8 + i * 1e5, links=[links[i % 32]])

    for i in range(32 * 12):
        env.process(prog(i), name=f"p{i}")
    env.run()


ENGINE_SCENARIOS = {
    "pipedata_hotpath": _engine_sorter_scenario,
    "flow_stress": _engine_flow_stress_scenario,
}


def measure_engine(profile_out: str | None = None
                   ) -> tuple[dict, dict]:
    """Run every engine scenario under the profile hooks; returns
    ``({name: {"events", "events_per_s", "wall_s"}}, {name: snapshot})``
    (best-of-``ENGINE_REPS`` wall-clock, exact event counts; the
    snapshot is the full per-kernel profile of the best rep)."""
    from repro.obs import profile as prof
    measured = {}
    snapshots = {}
    for name, scenario in ENGINE_SCENARIOS.items():
        scenario()                    # warm-up, unprofiled
        best = None
        for _ in range(ENGINE_REPS):
            prof.reset_profiling()
            prof.enable_profiling()
            try:
                scenario()
            finally:
                prof.disable_profiling()
            stats = prof.snapshot()["sim.engine.run"]
            if best is None or stats.total_s < best.total_s:
                best = stats
                snapshots[name] = {k: s.to_dict()
                                   for k, s in prof.snapshot().items()}
        measured[name] = {
            "events": best.elements,
            "events_per_s": best.elements_per_s,
            "wall_s": best.total_s,
        }
    if profile_out:
        with open(profile_out, "w") as fh:
            json.dump({"schema": "repro.engine_profile/v1",
                       "scenarios": snapshots, "measured": measured},
                      fh, indent=2, sort_keys=True)
            fh.write("\n")
        say(f"profile snapshot written: {profile_out}")
    return measured, snapshots


def check_engine(baseline: dict, measured: dict,
                 verdicts: dict | None = None) -> list[str]:
    """Compare measured throughput against the frozen engine baseline;
    returns failure messages (``verdicts`` as in :func:`check`)."""
    floor = baseline.get("floor_factor", FLOOR_FACTOR)
    failures: list[str] = []
    for name in ENGINE_SCENARIOS:
        frozen = baseline.get("scenarios", {}).get(name)
        cur = measured[name]
        if frozen is None:
            msg = (f"{name}: missing from engine baseline "
                   "(run with --engine --update)")
            failures.append(msg)
            if verdicts is not None:
                verdicts[name] = {"ok": False, "failures": [msg],
                                  "floor_ev_per_s": None}
            continue
        min_rate = frozen["events_per_s"] * floor
        ok = (cur["events"] == frozen["events"]
              and cur["events_per_s"] >= min_rate)
        status = "ok" if ok else "FAIL"
        say(f"{name}: {status}  events {cur['events']} "
            f"(frozen {frozen['events']})  "
            f"{cur['events_per_s']:,.0f} ev/s "
            f"(floor {min_rate:,.0f}, frozen "
            f"{frozen['events_per_s']:,.0f})")
        scoped = []
        if cur["events"] != frozen["events"]:
            scoped.append(
                f"{name}: event count drifted {frozen['events']} -> "
                f"{cur['events']} (semantic change, not noise; re-freeze "
                "with --engine --update only if intended)")
        if cur["events_per_s"] < min_rate:
            scoped.append(
                f"{name}: throughput {cur['events_per_s']:,.0f} ev/s "
                f"below floor {min_rate:,.0f} "
                f"({floor:.0%} of frozen {frozen['events_per_s']:,.0f})")
        failures.extend(scoped)
        if verdicts is not None:
            verdicts[name] = {"ok": ok, "failures": scoped,
                              "floor_ev_per_s": min_rate}
    return failures


# ---------------------------------------------------------------------------
# Peak-occupancy gate (--memory)
# ---------------------------------------------------------------------------

MEMORY_BASELINE = os.path.join(_HERE, "results", "memory_baseline.json")
MEMORY_BASELINE_SCHEMA = "repro.memory_baseline/v1"

#: The trace-diff scenarios plus a two-GPU point, so the ratchet covers
#: a gpu1 pool and the multi-worker pinned aggregate.
MEMORY_SCENARIOS = SCENARIOS + [
    {"name": "pipedata_2gpu_2m", "platform": "PLATFORM2",
     "approach": "pipedata", "n": 2_000_000, "batch_size": 250_000,
     "pinned_elements": 50_000, "n_gpus": 2},
]


def measure_memory() -> tuple[dict, list[str]]:
    """Run every memory scenario with the ledger attached; returns
    ``({name: {"peaks", "n_allocs", "n_frees"}}, invariant_failures)``.

    The invariant failures are baseline-independent: the ledger must
    balance to zero and the measured peaks must match the analytic
    planner's prediction with zero residual on a healthy run -- both
    hold by construction, so a miss is a bug, not noise.
    """
    from repro.obs import measured_peaks, memory_conformance, plan_memory
    measured: dict = {}
    invariant_failures: list[str] = []
    for sc in MEMORY_SCENARIOS:
        res = run_scenario(sc)
        peaks = measured_peaks(res)
        mem = res.metrics["memory"]
        kwargs = {k: sc[k] for k in ("batch_size", "pinned_elements",
                                     "n_streams", "memcpy_threads")
                  if k in sc}
        memplan = plan_memory(get_platform(sc["platform"]), sc["n"],
                              approach=sc["approach"],
                              n_gpus=sc.get("n_gpus", 1), **kwargs)
        conf = memory_conformance(memplan, peaks)
        if not mem["balanced"]:
            invariant_failures.append(
                f"{sc['name']}: ledger did not balance to zero "
                f"({mem['n_allocs']} allocs, {mem['n_frees']} frees)")
        if not conf["ok"]:
            bad = "; ".join(
                f"{p}: predicted {v['predicted_bytes']} B, measured "
                f"{v['measured_bytes']} B"
                for p, v in conf["pools"].items() if not v["ok"])
            invariant_failures.append(
                f"{sc['name']}: planner residual outside tolerance "
                f"({bad})")
        measured[sc["name"]] = {
            "peaks": {p: int(b) for p, b in sorted(peaks.items())},
            "n_allocs": mem["n_allocs"],
            "n_frees": mem["n_frees"],
        }
    return measured, invariant_failures


def check_memory(baseline: dict, measured: dict,
                 verdicts: dict | None = None) -> list[str]:
    """Compare measured peaks against the frozen memory baseline --
    exact equality, since occupancy is deterministic."""
    failures: list[str] = []
    for sc in MEMORY_SCENARIOS:
        name = sc["name"]
        frozen = baseline.get("scenarios", {}).get(name)
        cur = measured[name]
        if frozen is None:
            msg = (f"{name}: missing from memory baseline "
                   "(run with --memory --update)")
            failures.append(msg)
            if verdicts is not None:
                verdicts[name] = {"ok": False, "failures": [msg]}
            continue
        scoped: list[str] = []
        for pool in sorted(set(cur["peaks"]) | set(frozen["peaks"])):
            a = frozen["peaks"].get(pool)
            b = cur["peaks"].get(pool)
            if a != b:
                scoped.append(
                    f"{name}: {pool} peak drifted {a} -> {b} B "
                    "(occupancy is deterministic; re-freeze with "
                    "--memory --update only if intended)")
        if not scoped and (cur["n_allocs"] != frozen["n_allocs"]
                           or cur["n_frees"] != frozen["n_frees"]):
            scoped.append(
                f"{name}: alloc/free counts drifted "
                f"{frozen['n_allocs']}/{frozen['n_frees']} -> "
                f"{cur['n_allocs']}/{cur['n_frees']}")
        status = "ok" if not scoped else "FAIL"
        peak_s = ", ".join(f"{p}={b}" for p, b in cur["peaks"].items())
        say(f"{name}: {status}  peaks [{peak_s}] B  "
            f"{cur['n_allocs']} allocs / {cur['n_frees']} frees")
        failures.extend(scoped)
        if verdicts is not None:
            verdicts[name] = {"ok": not scoped, "failures": scoped}
    return failures


def _memory_entries(measured: dict, verdicts: dict) -> list[dict]:
    """One archive entry per memory scenario.  Peaks are deterministic,
    so re-running the gate appends nothing new (content-addressed
    idempotence) -- the series only grows when occupancy changes."""
    from repro.obs import make_entry
    entries = []
    for name, cur in measured.items():
        v = verdicts.get(name, {"ok": True, "failures": []})
        gate = {"gate": "memory", "ok": v["ok"],
                "failures": v["failures"]}
        metrics = {"peak_pinned_bytes": cur["peaks"].get("pinned", 0),
                   "mem_allocs": cur["n_allocs"],
                   "mem_frees": cur["n_frees"]}
        for pool, nbytes in cur["peaks"].items():
            if pool != "pinned":
                metrics[f"peak_device_bytes.{pool}"] = nbytes
        entries.append(make_entry(
            source="gate:memory", label=name,
            point={"gate": "memory", "scenario": name},
            metrics=metrics, verdicts=[gate]))
    return entries


# ---------------------------------------------------------------------------
# Interconnect flow gate (--flows)
# ---------------------------------------------------------------------------

FLOWS_BASELINE = os.path.join(_HERE, "results", "flows_baseline.json")
FLOWS_BASELINE_SCHEMA = "repro.flows_baseline/v1"

#: Same scenario grid as the memory gate: the trace-diff scenarios plus
#: the two-GPU point, where PCIe links actually see concurrent flows.
FLOW_SCENARIOS = MEMORY_SCENARIOS


def measure_flows() -> tuple[dict, list[str]]:
    """Run every flow scenario with the ledger attached; returns
    ``({name: {"digest", "n_flows", ...}}, invariant_failures)``.

    The digest is the first 16 hex chars of the SHA-256 of the
    canonical ``repro.flows/v1`` document -- the simulator is
    deterministic, so the whole ledger must be byte-stable run to run
    and any drift is a real behaviour change, not noise.  The
    invariant failures are baseline-independent: the rate integral
    must equal bytes moved bit-for-bit, contention charges must sum
    exactly to each flow's duration, and every bound span must agree
    with the causal trace.
    """
    import hashlib
    from repro.obs import (attribute_contention, canonical_json,
                           reconcile_flow_spans, verify_contention,
                           verify_rate_integral)
    measured: dict = {}
    invariant_failures: list[str] = []
    for sc in FLOW_SCENARIOS:
        res = run_scenario(sc)
        doc = res.flow_ledger.to_dict()
        digest = hashlib.sha256(
            canonical_json(doc, indent=None).encode()).hexdigest()[:16]
        ri = verify_rate_integral(doc)
        if not ri["ok"]:
            invariant_failures.append(
                f"{sc['name']}: rate integral broke "
                f"({'; '.join(ri['failures'][:3])})")
        contention = attribute_contention(doc)
        vc = verify_contention(contention)
        if not vc["ok"]:
            invariant_failures.append(
                f"{sc['name']}: contention charges did not sum to "
                f"duration ({'; '.join(vc['failures'][:3])})")
        rec = reconcile_flow_spans(doc, res.trace)
        if not rec["ok"]:
            invariant_failures.append(
                f"{sc['name']}: flow/span reconciliation failed "
                f"({'; '.join(rec['failures'][:3])})")
        flows = res.metrics["flows"]
        measured[sc["name"]] = {
            "digest": digest,
            "n_flows": flows["n_flows"],
            "link_peak_utilization": flows["link_peak_utilization"],
            "transfer_contention_s": flows["transfer_contention_s"],
        }
    return measured, invariant_failures


def check_flows(baseline: dict, measured: dict,
                verdicts: dict | None = None) -> list[str]:
    """Compare the measured flow ledgers against the frozen baseline --
    exact digest equality, since the simulator is deterministic."""
    failures: list[str] = []
    for sc in FLOW_SCENARIOS:
        name = sc["name"]
        frozen = baseline.get("scenarios", {}).get(name)
        cur = measured[name]
        if frozen is None:
            msg = (f"{name}: missing from flows baseline "
                   "(run with --flows --update)")
            failures.append(msg)
            if verdicts is not None:
                verdicts[name] = {"ok": False, "failures": [msg]}
            continue
        scoped: list[str] = []
        if cur["digest"] != frozen["digest"]:
            scoped.append(
                f"{name}: flow ledger drifted {frozen['digest']} -> "
                f"{cur['digest']} (the ledger is deterministic; "
                "re-freeze with --flows --update only if intended)")
        if not scoped and cur["n_flows"] != frozen["n_flows"]:
            scoped.append(
                f"{name}: flow count drifted "
                f"{frozen['n_flows']} -> {cur['n_flows']}")
        status = "ok" if not scoped else "FAIL"
        say(f"{name}: {status}  {cur['n_flows']} flows  "
            f"peak util {cur['link_peak_utilization']:.3f}  "
            f"contention {cur['transfer_contention_s']:.6f} s  "
            f"[{cur['digest']}]")
        failures.extend(scoped)
        if verdicts is not None:
            verdicts[name] = {"ok": not scoped, "failures": scoped}
    return failures


def _flows_entries(measured: dict, verdicts: dict) -> list[dict]:
    """One archive entry per flow scenario.  Metrics are finite numbers
    only (the digest lives in the baseline file, not the archive);
    ledgers are deterministic, so re-running the gate appends nothing
    new until interconnect behaviour actually changes."""
    from repro.obs import make_entry
    entries = []
    for name, cur in measured.items():
        v = verdicts.get(name, {"ok": True, "failures": []})
        gate = {"gate": "flows", "ok": v["ok"],
                "failures": v["failures"]}
        entries.append(make_entry(
            source="gate:flows", label=name,
            point={"gate": "flows", "scenario": name},
            metrics={"n_flows": cur["n_flows"],
                     "link_peak_utilization":
                         cur["link_peak_utilization"],
                     "transfer_contention_s":
                         cur["transfer_contention_s"]},
            verdicts=[gate]))
    return entries


# ---------------------------------------------------------------------------
# Multi-tenant service gate (--service)
# ---------------------------------------------------------------------------

SERVICE_BASELINE = os.path.join(_HERE, "results", "service_baseline.json")
SERVICE_BASELINE_SCHEMA = "repro.service_baseline/v1"

#: One pinned scenario per allocator over the identical seeded job
#: stream (timing-only, CI-sized).  The verdict is a pure function of
#: the code, so its canonical-JSON digest is the ratchet.
SERVICE_SCENARIOS = [
    {"name": f"serve_{alloc.replace('-', '_')}", "allocator": alloc}
    for alloc in ("fair-share", "max-min", "fixed-levels",
                  "strict-priority")
]


def _service_tenants():
    from repro.service import Tenant
    return (
        Tenant("gold", priority=2, share=2.0, rate_hz=40.0, n_jobs=2,
               n_elements=50_000, slo_s=0.5),
        Tenant("silver", priority=1, share=1.0, rate_hz=30.0, n_jobs=2,
               n_elements=50_000),
        Tenant("batch", priority=0, share=0.5, rate_hz=20.0, n_jobs=2,
               n_elements=100_000),
    )


def measure_service() -> tuple[dict, list[str], dict]:
    """Run every service scenario; returns ``({name: {"digest", ...}},
    invariant_failures, {name: verdict_doc})``.

    The digest is the first 16 hex chars of the SHA-256 of the
    canonical ``repro.service/v1`` verdict.  Invariant failures are
    baseline-independent: the flow ledger's rate integral must hold
    under every allocator, the memory ledger must balance, and each
    tenant must move identical bytes whatever the policy (allocators
    change when bytes move, never which bytes move).
    """
    import hashlib
    from repro.obs import canonical_json, verify_rate_integral
    from repro.service import ServiceConfig, run_service
    tenants = _service_tenants()
    measured: dict = {}
    verdict_docs: dict = {}
    invariant_failures: list[str] = []
    tenant_bytes_ref: dict | None = None
    for sc in SERVICE_SCENARIOS:
        cfg = ServiceConfig(allocator=sc["allocator"], seed=0,
                            functional=False, batch_size=20_000,
                            pinned_elements=5_000)
        res = run_service(tenants, cfg)
        verdict = res.verdict
        verdict_docs[sc["name"]] = verdict
        digest = hashlib.sha256(
            canonical_json(verdict, indent=None).encode()
        ).hexdigest()[:16]
        ri = verify_rate_integral(res.flow_ledger.to_dict())
        if not ri["ok"]:
            invariant_failures.append(
                f"{sc['name']}: rate integral broke under "
                f"{sc['allocator']} ({'; '.join(ri['failures'][:3])})")
        try:
            res.memory_ledger.check_balanced()
        except Exception as exc:
            invariant_failures.append(
                f"{sc['name']}: memory ledger unbalanced ({exc})")
        tb = verdict["flows"]["tenant_bytes"]
        if tenant_bytes_ref is None:
            tenant_bytes_ref = tb
        elif any(abs(tb[t] - tenant_bytes_ref[t])
                 > 1e-6 * max(tenant_bytes_ref[t], 1.0)
                 for t in tenant_bytes_ref):
            invariant_failures.append(
                f"{sc['name']}: per-tenant bytes moved differ from the "
                "fair-share run (allocators must not change the work)")
        measured[sc["name"]] = {
            "digest": digest,
            "n_jobs": verdict["n_jobs"],
            "elapsed_s": verdict["elapsed_s"],
            "jain_latency_index":
                verdict["fairness"]["jain_latency_index"],
            "p99_latency_s.gold":
                verdict["tenants"]["gold"]["p99_latency_s"],
            "slo_hit_rate": verdict["slo"]["hit_rate"],
        }
    return measured, invariant_failures, verdict_docs


def check_service(baseline: dict, measured: dict,
                  verdicts: dict | None = None) -> list[str]:
    """Compare measured service verdicts against the frozen baseline --
    exact digest equality, since the verdict is byte-deterministic."""
    failures: list[str] = []
    for sc in SERVICE_SCENARIOS:
        name = sc["name"]
        frozen = baseline.get("scenarios", {}).get(name)
        cur = measured[name]
        if frozen is None:
            msg = (f"{name}: missing from service baseline "
                   "(run with --service --update)")
            failures.append(msg)
            if verdicts is not None:
                verdicts[name] = {"ok": False, "failures": [msg]}
            continue
        scoped: list[str] = []
        if cur["digest"] != frozen["digest"]:
            scoped.append(
                f"{name}: service verdict drifted {frozen['digest']} "
                f"-> {cur['digest']} (the verdict is byte-deterministic; "
                "re-freeze with --service --update only if intended)")
        if not scoped and cur["n_jobs"] != frozen["n_jobs"]:
            scoped.append(f"{name}: job count drifted "
                          f"{frozen['n_jobs']} -> {cur['n_jobs']}")
        status = "ok" if not scoped else "FAIL"
        say(f"{name}: {status}  {cur['n_jobs']} jobs  "
            f"elapsed {cur['elapsed_s']:.6f}s  "
            f"gold p99 {cur['p99_latency_s.gold']:.6f}s  "
            f"jain {cur['jain_latency_index']:.4f}  [{cur['digest']}]")
        failures.extend(scoped)
        if verdicts is not None:
            verdicts[name] = {"ok": not scoped, "failures": scoped}
    return failures


def _service_entries(verdict_docs: dict, verdicts: dict) -> list[dict]:
    """One archive entry per service scenario, on the same trend series
    as ``repro serve --archive`` runs of the identical configuration
    (the point dict is the verdict's identity, so fingerprints line
    up).  Verdicts are deterministic, so re-running the gate appends
    nothing new until service behaviour actually changes."""
    from repro.service import archive_entry
    entries = []
    for name, doc in verdict_docs.items():
        v = verdicts.get(name, {"ok": True, "failures": []})
        gate = {"gate": "service", "ok": v["ok"],
                "failures": v["failures"]}
        entries.append(archive_entry(doc, label=name,
                                     gate_verdicts=[gate],
                                     source="gate:service"))
    return entries


def _regression_entries(runs: dict, verdicts: dict) -> list[dict]:
    """One archive entry per trace-diff scenario (the scenario dict is
    the fingerprinted point, so every CI run of the same scenario lands
    on the same series)."""
    from repro.obs import entry_from_result
    entries = []
    for name, (sc, res, report) in runs.items():
        v = verdicts.get(name, {"ok": True, "failures": []})
        gate = {"gate": "regression", "ok": v["ok"],
                "failures": v["failures"]}
        entries.append(entry_from_result(
            res, source="gate:regression", label=name, point=dict(sc),
            report=report, verdicts=[gate]))
    return entries


def _engine_entries(measured: dict, snapshots: dict,
                    verdicts: dict) -> list[dict]:
    """One archive entry per engine scenario, profile snapshot
    included.  Wall-clock varies run to run, so entries are unique per
    CI run -- the events/sec series is exactly what the trend
    observatory is for."""
    from repro.obs import make_entry
    entries = []
    for name, cur in measured.items():
        v = verdicts.get(name, {"ok": True, "failures": []})
        gate = {"gate": "engine", "ok": v["ok"],
                "failures": v["failures"]}
        entries.append(make_entry(
            source="gate:engine", label=name,
            point={"gate": "engine", "scenario": name},
            metrics={"events": cur["events"],
                     "events_per_s": cur["events_per_s"],
                     "wall_s": cur["wall_s"]},
            profile=snapshots.get(name), verdicts=[gate]))
    return entries


def _classify_failures(failures: list[str], verdicts: dict,
                       history: list[dict], entries: list[dict],
                       metric: str, threshold_key: str) -> list[str]:
    """Suffix each scenario's failures with the trend verdict: was this
    a one-off miss, or have the last archived runs of the same
    fingerprint been beyond tolerance too?"""
    by_label = {e["label"]: e for e in entries}
    notes = {}
    for name, v in verdicts.items():
        if v["ok"] or name not in by_label:
            continue
        limit = v.get(threshold_key)
        if limit is None:
            continue
        if threshold_key == "floor_ev_per_s":
            def beyond(e, lim=limit):
                return e["metrics"].get(metric, lim) < lim
        else:
            def beyond(e, lim=limit):
                return e["metrics"].get(metric, 0.0) > lim
        notes[name] = trend_note(history,
                                 by_label[name]["fingerprint"], beyond)
    return [f"{msg} [{notes[msg.split(':', 1)[0]]}]"
            if msg.split(":", 1)[0] in notes else msg
            for msg in failures]


def main(argv=None) -> int:
    global _INFO
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline", default=None,
                   help="baseline JSON path")
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative makespan growth to tolerate "
                        "(default: the baseline's own)")
    p.add_argument("--update", action="store_true",
                   help="re-run the scenarios and rewrite the baseline")
    p.add_argument("--trace-dir", default=None,
                   help="also write one Perfetto trace JSON per scenario")
    p.add_argument("--engine", action="store_true",
                   help="run the simulator-throughput gate instead of "
                        "the trace-diff gate")
    p.add_argument("--memory", action="store_true",
                   help="run the peak-occupancy gate instead of the "
                        "trace-diff gate")
    p.add_argument("--flows", action="store_true",
                   help="run the interconnect flow-ledger gate instead "
                        "of the trace-diff gate")
    p.add_argument("--service", action="store_true",
                   help="run the multi-tenant service verdict gate "
                        "instead of the trace-diff gate")
    p.add_argument("--profile-out", default=None,
                   help="(--engine) write the full profile snapshot "
                        "JSON for artifact upload")
    p.add_argument("--json", action="store_true",
                   help="print one repro.gate/v1 document on stdout "
                        "(progress lines go to stderr)")
    p.add_argument("--archive", default=None, metavar="PATH",
                   help="append every measurement to a repro.archive/v1 "
                        "archive and classify failures against its "
                        "history (one-off miss vs sustained regression)")
    args = p.parse_args(argv)
    if args.json:
        _INFO = sys.stderr
    if sum((args.engine, args.memory, args.flows, args.service)) > 1:
        p.error("--engine, --memory, --flows, and --service are "
                "mutually exclusive")

    if args.service:
        baseline_path = args.baseline or SERVICE_BASELINE
        measured, invariant_failures, verdict_docs = measure_service()
        if args.update:
            if invariant_failures:
                for msg in invariant_failures:
                    print(f"INVARIANT: {msg}", file=sys.stderr)
                print("refusing to freeze a baseline from a run that "
                      "broke the service invariants", file=sys.stderr)
                return 1
            doc = {"schema": SERVICE_BASELINE_SCHEMA,
                   "scenarios": measured}
            os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
            with open(baseline_path, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            say(f"service baseline updated: {baseline_path} "
                f"({len(measured)} scenarios)")
            return 0
        if not os.path.exists(baseline_path):
            print(f"no service baseline at {baseline_path}; run with "
                  "--service --update first", file=sys.stderr)
            return 1
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        verdicts: dict = {}
        failures = invariant_failures + check_service(
            baseline, measured, verdicts=verdicts)
        entries = _service_entries(verdict_docs, verdicts)
        archive_entries(args.archive, entries)
        return _finish(args, "service", failures, entries)

    if args.flows:
        baseline_path = args.baseline or FLOWS_BASELINE
        measured, invariant_failures = measure_flows()
        if args.update:
            if invariant_failures:
                for msg in invariant_failures:
                    print(f"INVARIANT: {msg}", file=sys.stderr)
                print("refusing to freeze a baseline from a run that "
                      "broke the ledger invariants", file=sys.stderr)
                return 1
            doc = {"schema": FLOWS_BASELINE_SCHEMA,
                   "scenarios": measured}
            os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
            with open(baseline_path, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            say(f"flows baseline updated: {baseline_path} "
                f"({len(measured)} scenarios)")
            return 0
        if not os.path.exists(baseline_path):
            print(f"no flows baseline at {baseline_path}; run with "
                  "--flows --update first", file=sys.stderr)
            return 1
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        verdicts: dict = {}
        failures = invariant_failures + check_flows(baseline, measured,
                                                    verdicts=verdicts)
        entries = _flows_entries(measured, verdicts)
        archive_entries(args.archive, entries)
        return _finish(args, "flows", failures, entries)

    if args.memory:
        baseline_path = args.baseline or MEMORY_BASELINE
        measured, invariant_failures = measure_memory()
        if args.update:
            if invariant_failures:
                for msg in invariant_failures:
                    print(f"INVARIANT: {msg}", file=sys.stderr)
                print("refusing to freeze a baseline from an unbalanced "
                      "or non-conforming run", file=sys.stderr)
                return 1
            doc = {"schema": MEMORY_BASELINE_SCHEMA,
                   "scenarios": measured}
            os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
            with open(baseline_path, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            say(f"memory baseline updated: {baseline_path} "
                f"({len(measured)} scenarios)")
            return 0
        if not os.path.exists(baseline_path):
            print(f"no memory baseline at {baseline_path}; run with "
                  "--memory --update first", file=sys.stderr)
            return 1
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        verdicts: dict = {}
        failures = invariant_failures + check_memory(baseline, measured,
                                                     verdicts=verdicts)
        entries = _memory_entries(measured, verdicts)
        archive_entries(args.archive, entries)
        return _finish(args, "memory", failures, entries)

    if args.engine:
        baseline_path = args.baseline or ENGINE_BASELINE
        measured, snapshots = measure_engine(profile_out=args.profile_out)
        if args.update:
            doc = {"schema": ENGINE_SCHEMA, "floor_factor": FLOOR_FACTOR,
                   "scenarios": measured}
            os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
            with open(baseline_path, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            say(f"engine baseline updated: {baseline_path} "
                f"({len(measured)} scenarios)")
            return 0
        if not os.path.exists(baseline_path):
            print(f"no engine baseline at {baseline_path}; run with "
                  "--engine --update first", file=sys.stderr)
            return 1
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        verdicts: dict = {}
        failures = check_engine(baseline, measured, verdicts=verdicts)
        entries = _engine_entries(measured, snapshots, verdicts)
        history = load_history(args.archive)
        failures = _classify_failures(failures, verdicts, history,
                                      entries, "events_per_s",
                                      "floor_ev_per_s")
        archive_entries(args.archive, entries)
        return _finish(args, "engine", failures, entries)

    if args.baseline is None:
        args.baseline = BASELINE
    if args.update:
        doc = build_baseline(trace_dir=args.trace_dir)
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        say(f"baseline updated: {args.baseline} "
            f"({len(doc['scenarios'])} scenarios)")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    runs = run_scenarios(trace_dir=args.trace_dir)
    verdicts = {}
    failures = check(baseline, tolerance=args.tolerance, runs=runs,
                     verdicts=verdicts)
    entries = _regression_entries(runs, verdicts)
    history = load_history(args.archive)
    failures = _classify_failures(failures, verdicts, history, entries,
                                  "makespan_s", "threshold_s")
    archive_entries(args.archive, entries)
    return _finish(args, "regression", failures, entries)


def _finish(args, gate: str, failures: list[str],
            entries: list[dict]) -> int:
    """Common gate exit: the --json document or stderr failure lines."""
    if args.json:
        from repro.obs import canonical_json
        doc = {"schema": GATE_SCHEMA, "gate": gate,
               "ok": not failures, "failures": failures,
               "entries": entries}
        print(canonical_json(doc, indent=None))
        return 1 if failures else 0
    for msg in failures:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
