"""Fig. 9: response time vs. n for every approach on PLATFORM1.

The paper's main result: b_s = 5e8, n_s = 2, n = 1e9 .. 5e9.  Anchors:

* all approaches beat the 16-thread CPU reference at every n;
* BLINEMULTI(5e9) = 31.2 s, PIPEDATA(5e9) = 25.55 s (22% faster);
* PIPEMERGE marginally improves on PIPEDATA;
* PARMEMCPY brings ~13%; fastest = PIPEMERGE+PARMEMCPY at
  3.47x (n = 1e9) and 3.21x (n = 5e9) over the reference.
"""

import pytest

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hw import PLATFORM1
from repro.reporting import FigureSeries, render_table
from repro.workloads import dataset_gib

SIZES = [int(1e9), int(2e9), int(3e9), int(4e9), int(5e9)]
BS = int(5e8)
CONFIGS = [
    ("BLineMulti", "blinemulti", {}),
    ("PipeData", "pipedata", {}),
    ("PipeMerge", "pipemerge", {}),
    ("PipeMerge+ParMemCpy", "pipemerge", {"memcpy_threads": 8}),
]


def sweep():
    series = {name: FigureSeries(name) for name, _, _ in CONFIGS}
    series["Ref"] = FigureSeries("Ref")
    for n in SIZES:
        for name, ap, kw in CONFIGS:
            s = HeterogeneousSorter(PLATFORM1, batch_size=BS,
                                    n_streams=2, **kw)
            series[name].add(n, s.sort(n=n, approach=ap).elapsed)
        series["Ref"].add(n, cpu_reference_sort(PLATFORM1, n=n).elapsed)
    return series


@pytest.fixture(scope="module")
def series():
    return sweep()


def test_fig9_table(report, series, benchmark):
    names = [c[0] for c in CONFIGS] + ["Ref"]
    rows = []
    for n in SIZES:
        rows.append([f"{n:.0e}", f"{dataset_gib(n):.2f}"]
                    + [f"{series[m].at(n):.2f}" for m in names])
    report(render_table(["n", "GiB"] + names, rows,
                        title="Fig. 9: response time [s] vs n, "
                              "PLATFORM1 (b_s=5e8, n_s=2)"))

    benchmark.pedantic(
        lambda: HeterogeneousSorter(
            PLATFORM1, batch_size=BS, n_streams=2).sort(
            n=SIZES[0], approach="pipedata"),
        rounds=1, iterations=1)


def test_fig9_all_beat_reference(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, _, _ in CONFIGS:
        for n in SIZES:
            assert series[name].at(n) < series["Ref"].at(n), (name, n)


def test_fig9_blinemulti_and_pipedata_anchors(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert series["BLineMulti"].at(int(5e9)) == pytest.approx(31.2,
                                                              rel=0.08)
    assert series["PipeData"].at(int(5e9)) == pytest.approx(25.55,
                                                            rel=0.08)
    gain = 1 - series["PipeData"].at(int(5e9)) / \
        series["BLineMulti"].at(int(5e9))
    assert 0.15 <= gain <= 0.32  # paper: 22%


def test_fig9_fastest_speedups(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fastest = series["PipeMerge+ParMemCpy"]
    sp_small = series["Ref"].at(SIZES[0]) / fastest.at(SIZES[0])
    sp_large = series["Ref"].at(SIZES[-1]) / fastest.at(SIZES[-1])
    # Paper: 3.47x (n=1e9) and 3.21x (n=5e9).  The large-n anchor is what
    # the calibration targets and lands within a few percent; at n = 1e9
    # (only 2 batches, a single cheap pair merge) the simulation
    # overshoots the paper somewhat -- see EXPERIMENTS.md.
    assert 3.0 <= sp_small <= 4.7
    assert sp_large == pytest.approx(3.21, rel=0.08)
    # Efficiency declines as n (and the merge burden) grows, as in the
    # paper's 3.47 -> 3.21 trend.
    assert sp_small > sp_large


def test_fig9_ordering_at_every_n(series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in SIZES:
        bm = series["BLineMulti"].at(n)
        pd = series["PipeData"].at(n)
        pm = series["PipeMerge"].at(n)
        pmc = series["PipeMerge+ParMemCpy"].at(n)
        # At n = 1e9 (two batches) the pair-merge quota is 0, so
        # PIPEMERGE degenerates to PIPEDATA exactly -- hence >=.
        assert bm > pd >= pm >= pmc * 0.999, n


def test_fig9_scaling_roughly_linear(series, benchmark):
    """Response times grow close to linearly in n (fixed b_s, n_b ~ n)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, _, _ in CONFIGS:
        t1 = series[name].at(SIZES[0])
        t5 = series[name].at(SIZES[-1])
        # Super-linear growth is expected: the multiway merge's k grows
        # with n (O(n log n_b) work, Sec. III-A) -- visible as the upward
        # bend of the Fig. 9 curves.
        assert 3.5 <= t5 / t1 <= 8.5, name
